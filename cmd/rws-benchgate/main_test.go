package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseText = `goos: linux
goarch: amd64
pkg: rwskit/internal/serve
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHandlerSameSet-4     	     100	      3500 ns/op	   18 B/op
BenchmarkHandlerSameSet-4     	     100	      3600 ns/op	   18 B/op
BenchmarkHandlerSameSet-4     	     100	      3400 ns/op	   18 B/op
BenchmarkStoreCurrent-4       	     100	         0.37 ns/op	    0 B/op
BenchmarkStoreDiffCached-4    	     100	       800 ns/op
BenchmarkVanished-4           	     100	       123 ns/op
PASS
`

// writeFile drops content into the test dir and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchMediansSamples(t *testing.T) {
	got, err := parseBench(strings.NewReader(baseText))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got.samples["BenchmarkHandlerSameSet"]); n != 3 {
		t.Errorf("HandlerSameSet samples = %d, want 3", n)
	}
	if got.cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu header = %q", got.cpu)
	}
	if m := median(got.samples["BenchmarkHandlerSameSet"]); m != 3500 {
		t.Errorf("median = %g, want 3500", m)
	}
	if m := median(got.samples["BenchmarkStoreCurrent"]); m != 0.37 {
		t.Errorf("sub-ns benchmark parsed as %g", m)
	}
	if _, err := parseBench(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("benchmark-free input should error")
	}
	// Even sample counts take the mean of the middle pair.
	if m := median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("even median = %g, want 2.5", m)
	}
	if m := minOf(got.samples["BenchmarkHandlerSameSet"]); m != 3400 {
		t.Errorf("min = %g, want 3400", m)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := writeFile(t, "base.txt", baseText)
	cur := writeFile(t, "cur.txt", `
BenchmarkHandlerSameSet-8     	     100	      4000 ns/op
BenchmarkStoreCurrent-8       	     100	         0.40 ns/op
BenchmarkStoreDiffCached-8    	     100	       900 ns/op
BenchmarkBrandNew-8           	     100	        55 ns/op
`)
	var sb strings.Builder
	// min 4000 / min 3400 ≈ 1.18 < 1.25: within threshold despite the
	// different GOMAXPROCS suffix; new benchmarks and ungated
	// disappearances are informational.
	if err := run([]string{"-baseline", base, "-current", cur,
		"-match", "HandlerSameSet|StoreCurrent|StoreDiffCached"}, &sb); err != nil {
		t.Fatalf("gate failed: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"BenchmarkBrandNew", "new", "BenchmarkVanished", "missing"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestGateFailsOnVanishedGatedBenchmark: a gated benchmark that
// disappears from the current run must fail the build — deleting or
// renaming a hot-path benchmark must not silently disarm its gate.
func TestGateFailsOnVanishedGatedBenchmark(t *testing.T) {
	base := writeFile(t, "base.txt", baseText)
	cur := writeFile(t, "cur.txt", `
BenchmarkHandlerSameSet-4     	     100	      3500 ns/op
BenchmarkStoreCurrent-4       	     100	         0.40 ns/op
BenchmarkStoreDiffCached-4    	     100	       800 ns/op
`)
	var sb strings.Builder
	err := run([]string{"-baseline", base, "-current", cur}, &sb)
	if err == nil {
		t.Fatalf("vanished gated BenchmarkVanished should fail the build\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "MISSING") {
		t.Errorf("table does not flag the vanished benchmark:\n%s", sb.String())
	}
}

// TestGateDemotesOnForeignCPU: a baseline recorded on different
// hardware turns the gate into a report — hardware deltas must not read
// as code regressions — unless -ignore-cpu insists.
func TestGateDemotesOnForeignCPU(t *testing.T) {
	base := writeFile(t, "base.txt", baseText)
	cur := writeFile(t, "cur.txt", `cpu: AMD EPYC 7763 64-Core Processor
BenchmarkHandlerSameSet-4     	     100	      9000 ns/op
BenchmarkStoreCurrent-4       	     100	         0.40 ns/op
BenchmarkStoreDiffCached-4    	     100	       800 ns/op
BenchmarkVanished-4           	     100	       123 ns/op
`)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur}, &sb); err != nil {
		t.Fatalf("foreign-cpu run should demote, not fail: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "demoted to informational") {
		t.Errorf("demotion not reported:\n%s", sb.String())
	}
	sb.Reset()
	if err := run([]string{"-baseline", base, "-current", cur, "-ignore-cpu"}, &sb); err == nil {
		t.Errorf("-ignore-cpu should restore the failing gate\n%s", sb.String())
	}

	// A vanished gated benchmark is a structural failure, not a timing
	// one: it must fail even on foreign hardware, or a rename disarms
	// the gate on every non-reference machine.
	curVanished := writeFile(t, "cur-vanished.txt", `cpu: AMD EPYC 7763 64-Core Processor
BenchmarkHandlerSameSet-4     	     100	      3500 ns/op
BenchmarkStoreCurrent-4       	     100	         0.40 ns/op
BenchmarkStoreDiffCached-4    	     100	       800 ns/op
`)
	sb.Reset()
	err := run([]string{"-baseline", base, "-current", curVanished}, &sb)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("vanished gated benchmark on foreign cpu: err = %v, want a missing failure\n%s", err, sb.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeFile(t, "base.txt", baseText)
	cur := writeFile(t, "cur.txt", `
BenchmarkHandlerSameSet-4     	     100	      9000 ns/op
BenchmarkStoreCurrent-4       	     100	         0.40 ns/op
BenchmarkStoreDiffCached-4    	     100	       810 ns/op
BenchmarkVanished-4           	     100	       123 ns/op
`)
	var sb strings.Builder
	err := run([]string{"-baseline", base, "-current", cur}, &sb)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("9000/3400 should fail the gate, got %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("table does not flag the regression:\n%s", sb.String())
	}

	// The same regression outside -match cannot fail the build.
	sb.Reset()
	if err := run([]string{"-baseline", base, "-current", cur, "-match", "StoreDiff"}, &sb); err != nil {
		t.Errorf("ungated regression failed the build: %v", err)
	}
}

// TestGateSkipsBelowTimerFloor: a sub-nanosecond baseline (an atomic
// load at -benchtime=100x) is below timer resolution and must never
// gate, even when the ratio explodes.
func TestGateSkipsBelowTimerFloor(t *testing.T) {
	base := writeFile(t, "base.txt", baseText)
	cur := writeFile(t, "cur.txt", `
BenchmarkHandlerSameSet-4     	     100	      3500 ns/op
BenchmarkStoreCurrent-4       	     100	        40 ns/op
BenchmarkStoreDiffCached-4    	     100	       800 ns/op
BenchmarkVanished-4           	     100	       123 ns/op
`)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur}, &sb); err != nil {
		t.Fatalf("sub-floor benchmark failed the gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "below 50ns floor") {
		t.Errorf("floor skip not reported:\n%s", sb.String())
	}
}

func TestWriteJSONAndBaselineBootstrap(t *testing.T) {
	cur := writeFile(t, "cur.txt", baseText)
	jsonPath := filepath.Join(t.TempDir(), "BENCH_5.json")
	var sb strings.Builder
	// No -baseline: the bootstrap path reports and still writes the JSON
	// artifact.
	if err := run([]string{"-current", cur, "-write-json", jsonPath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no baseline") {
		t.Errorf("bootstrap message missing:\n%s", sb.String())
	}
	body, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"BenchmarkHandlerSameSet"`, `"min_ns_op": 3400`, `"median_ns_op": 3500`, `"samples_ns_op"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("JSON artifact missing %q:\n%s", want, body)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                                     // -current required
		{"-current", "x", "extra"},             // positional args rejected
		{"-current", "x", "-threshold", "0.9"}, // threshold must exceed 1
		{"-current", "x", "-match", "("},       // bad regexp
		{"-current", "x", "-stat", "mean"},     // unknown statistic
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) should fail", args)
		}
	}
}

// allocText is a -benchmem run: two clean zero-alloc benchmarks, one
// allocating one, and one without the allocs/op column at all.
const allocText = `goos: linux
pkg: rwskit/internal/serve
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHandlerSameSetPrebaked-2   	 1425738	       836.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkHandlerSameSetPrebaked-2   	 1425738	       839.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkHandlerStatsPrebaked-2     	 3065910	       391.4 ns/op	       0 B/op	       0 allocs/op
BenchmarkHandlerSameSet-2           	  600000	      1998.0 ns/op	    1008 B/op	       8 allocs/op
BenchmarkStoreDiffCached-2          	  100000	       800.0 ns/op
PASS
`

func TestAssertZeroAlloc(t *testing.T) {
	cur := writeFile(t, "cur.txt", allocText)
	// Clean benchmarks pass and are reported.
	var sb strings.Builder
	if err := run([]string{"-current", cur, "-assert-zero-alloc", "Prebaked$"}, &sb); err != nil {
		t.Fatalf("clean assertion failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "hold 0 allocs/op") {
		t.Errorf("assertion not reported:\n%s", sb.String())
	}
	// An allocating benchmark in the asserted set fails and is named.
	err := run([]string{"-current", cur, "-assert-zero-alloc", "BenchmarkHandler"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkHandlerSameSet: 8 allocs/op") {
		t.Errorf("allocating benchmark not caught: %v", err)
	}
	// No matching benchmark: the assertion must fail, not pass vacuously.
	if err := run([]string{"-current", cur, "-assert-zero-alloc", "NoSuchBenchmark"}, &sb); err == nil {
		t.Error("vacuous match should fail")
	}
	// Matching benchmarks without an allocs/op column (no -benchmem):
	// also a failure, the data the assertion needs is absent.
	if err := run([]string{"-current", cur, "-assert-zero-alloc", "StoreDiffCached"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "-benchmem") {
		t.Errorf("column-free assertion: err = %v, want a -benchmem hint", err)
	}
	// Bad regexp is a flag error.
	if _, err := parseFlags([]string{"-current", "x", "-assert-zero-alloc", "("}); err == nil {
		t.Error("bad -assert-zero-alloc regexp should fail")
	}
	// The assertion composes with a baseline comparison and runs first.
	base := writeFile(t, "base.txt", allocText)
	if err := run([]string{"-current", cur, "-baseline", base, "-assert-zero-alloc", "Prebaked$"}, &sb); err != nil {
		t.Fatalf("assertion + gate: %v\n%s", err, sb.String())
	}
}
