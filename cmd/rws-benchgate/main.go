// Command rws-benchgate is the CI benchmark-regression gate: it parses
// two `go test -bench` text outputs (a committed baseline and the
// current run), reduces each benchmark's samples to one ns/op statistic,
// and fails when a gated benchmark regressed past the threshold.
//
// Usage:
//
//	rws-benchgate -current BENCH.txt [-baseline BASELINE.txt]
//	              [-threshold 1.25] [-match REGEX] [-min-ns 50]
//	              [-stat min|median] [-write-json BENCH.json]
//	              [-assert-zero-alloc REGEX]
//
// The inputs are plain `go test -bench` output (any -count; a
// benchmark's repeated samples are reduced with -stat before comparing,
// which is what makes a 5-count run meaningfully comparable). The
// default statistic is min: scheduler and cache interference only ever
// add time, so the fastest of N runs is the least-disturbed measurement
// — medians of short (-benchtime=100x) runs on a busy box routinely
// swing 2x while the min stays put. -match selects which benchmarks gate the
// build; everything else is reported but cannot fail it. A gated
// benchmark that vanishes from the current run fails the build too, so a
// deleted or renamed hot-path benchmark cannot silently disarm its gate.
// When the baseline's cpu: header names different hardware than the
// current run's, the gate demotes itself to an informational report
// (hardware deltas would drown the threshold); -ignore-cpu overrides.
// -min-ns guards
// against gating on timings below the timer's resolution: a benchmark
// whose baseline median is under the floor (e.g. a sub-nanosecond atomic
// load measured with -benchtime=100x) is reported but never fails.
// Without -baseline the gate only parses and reports the current run —
// the bootstrap path CI uses until a baseline is committed.
//
// -write-json emits the parsed current run as JSON (the BENCH_9.json
// artifact), so later tooling can diff runs without re-parsing text.
//
// -assert-zero-alloc REGEX asserts that every current-run sample of
// every benchmark matching REGEX reports 0 allocs/op (the runs must use
// -benchmem). Unlike the timing gate it is hardware-independent, so it
// fails the build even when the cpu guard demotes the ratio comparison
// — and it fails when no matching benchmark carries an allocs/op
// column, so a renamed benchmark or a dropped -benchmem flag cannot
// silently disarm the assertion.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rws-benchgate:", err)
		os.Exit(1)
	}
}

type config struct {
	baseline  string
	current   string
	threshold float64
	match     *regexp.Regexp
	minNs     float64
	stat      string
	ignoreCPU bool
	writeJSON string
	zeroAlloc *regexp.Regexp
}

// reduce collapses one benchmark's samples with the configured
// statistic.
func (c config) reduce(samples []float64) float64 {
	if c.stat == "median" {
		return median(samples)
	}
	return minOf(samples)
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("rws-benchgate", flag.ContinueOnError)
	baseline := fs.String("baseline", "", "baseline `go test -bench` output (optional: without it, only report)")
	current := fs.String("current", "", "current `go test -bench` output (required)")
	threshold := fs.Float64("threshold", 1.25, "fail when current/baseline median exceeds this ratio")
	match := fs.String("match", ".*", "regexp choosing the benchmarks that gate the build")
	minNs := fs.Float64("min-ns", 50, "skip gating benchmarks whose reduced baseline ns/op is below this floor")
	stat := fs.String("stat", "min", "statistic reducing repeated samples: min (noise-robust) or median")
	ignoreCPU := fs.Bool("ignore-cpu", false, "gate even when the baseline's cpu: header differs from the current run's")
	writeJSON := fs.String("write-json", "", "write the parsed current run as JSON to this path")
	zeroAlloc := fs.String("assert-zero-alloc", "", "regexp of benchmarks that must report 0 allocs/op in the current run")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if *current == "" || fs.NArg() != 0 {
		return config{}, fmt.Errorf("usage: rws-benchgate -current FILE [-baseline FILE] [-threshold R] [-match RE] [-min-ns N] [-stat min|median] [-write-json FILE]")
	}
	if *threshold <= 1 {
		return config{}, fmt.Errorf("-threshold must be > 1, got %g", *threshold)
	}
	if *stat != "min" && *stat != "median" {
		return config{}, fmt.Errorf("-stat must be min or median, got %q", *stat)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return config{}, fmt.Errorf("-match: %v", err)
	}
	cfg := config{
		baseline: *baseline, current: *current, threshold: *threshold,
		match: re, minNs: *minNs, stat: *stat, ignoreCPU: *ignoreCPU, writeJSON: *writeJSON,
	}
	if *zeroAlloc != "" {
		if cfg.zeroAlloc, err = regexp.Compile(*zeroAlloc); err != nil {
			return config{}, fmt.Errorf("-assert-zero-alloc: %v", err)
		}
	}
	return cfg, nil
}

// benchLine matches one result line of `go test -bench` output:
// name(-GOMAXPROCS), iteration count, ns/op. The trailing -benchmem
// allocs/op column, when present, feeds -assert-zero-alloc.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)
	allocsCol = regexp.MustCompile(`\s(\d+) allocs/op`)
)

// benchRun is one parsed `go test -bench` output: per-benchmark ns/op
// samples (and allocs/op where -benchmem reported them) plus the cpu:
// header, which identifies the hardware the numbers were taken on.
type benchRun struct {
	samples map[string][]float64
	allocs  map[string][]int64
	cpu     string
}

// parseBench reads `go test -bench` text and collects every sample's
// ns/op per benchmark name (GOMAXPROCS suffix stripped, so baselines
// survive a runner core-count change) plus the cpu: header.
func parseBench(r io.Reader) (benchRun, error) {
	out := benchRun{samples: make(map[string][]float64), allocs: make(map[string][]int64)}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			out.cpu = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return benchRun{}, fmt.Errorf("parsing %q: %v", line, err)
		}
		out.samples[m[1]] = append(out.samples[m[1]], ns)
		if a := allocsCol.FindStringSubmatch(line); a != nil {
			n, err := strconv.ParseInt(a[1], 10, 64)
			if err != nil {
				return benchRun{}, fmt.Errorf("parsing %q: %v", line, err)
			}
			out.allocs[m[1]] = append(out.allocs[m[1]], n)
		}
	}
	if err := sc.Err(); err != nil {
		return benchRun{}, err
	}
	if len(out.samples) == 0 {
		return benchRun{}, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}

// median reduces one benchmark's samples; with an even count it takes
// the mean of the middle pair. The input is copied, not reordered.
func median(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// minOf returns the smallest sample — the least-interfered run.
func minOf(samples []float64) float64 {
	m := samples[0]
	for _, s := range samples[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// row is one benchmark's comparison.
type row struct {
	name    string
	baseNs  float64
	curNs   float64
	verdict string // "ok", "REGRESSED", "MISSING", "skipped (below floor)", "new"
}

// compare builds the per-benchmark verdict table. A gated row fails the
// build when it regressed past the threshold — or when it vanished from
// the current run entirely, because a deleted or renamed hot-path
// benchmark would otherwise silently disarm its gate. The two failure
// kinds are reported separately: regressions are timing comparisons
// (only meaningful on the baseline's hardware), while a missing gated
// benchmark is a structural failure independent of where the run
// happened. New benchmarks and ungated disappearances are
// informational.
func compare(base, cur map[string][]float64, cfg config) (rows []row, regressed, missing bool) {
	names := make(map[string]bool, len(base)+len(cur))
	for n := range base {
		names[n] = true
	}
	for n := range cur {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, name := range ordered {
		r := row{name: name}
		bs, hasBase := base[name]
		cs, hasCur := cur[name]
		switch {
		case !hasBase:
			r.curNs = cfg.reduce(cs)
			r.verdict = "new"
		case !hasCur:
			r.baseNs = cfg.reduce(bs)
			if cfg.match.MatchString(name) {
				r.verdict = "MISSING (gated benchmark vanished)"
				missing = true
			} else {
				r.verdict = "missing"
			}
		default:
			r.baseNs, r.curNs = cfg.reduce(bs), cfg.reduce(cs)
			switch {
			case !cfg.match.MatchString(name):
				r.verdict = "ok (not gated)"
			case r.baseNs < cfg.minNs:
				r.verdict = fmt.Sprintf("skipped (baseline below %gns floor)", cfg.minNs)
			default:
				if r.curNs > r.baseNs*cfg.threshold {
					r.verdict = "REGRESSED"
					regressed = true
				} else {
					r.verdict = "ok"
				}
			}
		}
		rows = append(rows, r)
	}
	return rows, regressed, missing
}

// jsonResult is one benchmark in the -write-json artifact.
type jsonResult struct {
	Name       string    `json:"name"`
	Samples    []float64 `json:"samples_ns_op"`
	MinNsOp    float64   `json:"min_ns_op"`
	MedianNsOp float64   `json:"median_ns_op"`
}

func writeJSONFile(path string, cur map[string][]float64) error {
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)
	results := make([]jsonResult, 0, len(names))
	for _, n := range names {
		results = append(results, jsonResult{Name: n, Samples: cur[n], MinNsOp: minOf(cur[n]), MedianNsOp: median(cur[n])})
	}
	body, err := json.MarshalIndent(struct {
		Benchmarks []jsonResult `json:"benchmarks"`
	}{results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(body, '\n'), 0o644)
}

// assertZeroAlloc enforces -assert-zero-alloc against the current run.
// Every sample of every matching benchmark must report 0 allocs/op, and
// at least one matching benchmark must carry the column at all — a run
// without -benchmem (or with the benchmarks renamed away) fails rather
// than passing vacuously.
func assertZeroAlloc(cur benchRun, re *regexp.Regexp, out io.Writer) error {
	names := make([]string, 0, len(cur.samples))
	for n := range cur.samples {
		if re.MatchString(n) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("-assert-zero-alloc %v matched no benchmarks in the current run", re)
	}
	checked := 0
	var dirty []string
	for _, n := range names {
		allocs, ok := cur.allocs[n]
		if !ok {
			continue
		}
		checked++
		for _, a := range allocs {
			if a != 0 {
				dirty = append(dirty, fmt.Sprintf("%s: %d allocs/op", n, a))
				break
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("-assert-zero-alloc %v: no matching benchmark reports an allocs/op column (run with -benchmem)", re)
	}
	if len(dirty) > 0 {
		return fmt.Errorf("allocations on asserted zero-alloc benchmarks: %s", strings.Join(dirty, "; "))
	}
	fmt.Fprintf(out, "rws-benchgate: %d benchmarks matching %v hold 0 allocs/op\n", checked, re)
	return nil
}

func parseFile(path string) (benchRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return benchRun{}, err
	}
	defer f.Close()
	out, err := parseBench(f)
	if err != nil {
		return benchRun{}, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	cur, err := parseFile(cfg.current)
	if err != nil {
		return err
	}
	if cfg.writeJSON != "" {
		if err := writeJSONFile(cfg.writeJSON, cur.samples); err != nil {
			return err
		}
	}
	// The zero-alloc assertion is hardware-independent: it runs (and can
	// fail) before the baseline/cpu logic can demote anything.
	if cfg.zeroAlloc != nil {
		if err := assertZeroAlloc(cur, cfg.zeroAlloc, out); err != nil {
			return err
		}
	}
	if cfg.baseline == "" {
		fmt.Fprintf(out, "rws-benchgate: no baseline; parsed %d benchmarks from %s (commit a baseline to enable the gate)\n",
			len(cur.samples), cfg.current)
		names := make([]string, 0, len(cur.samples))
		for n := range cur.samples {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(out, "  %-40s %12.1f ns/op (%s of %d)\n", n, cfg.reduce(cur.samples[n]), cfg.stat, len(cur.samples[n]))
		}
		return nil
	}
	base, err := parseFile(cfg.baseline)
	if err != nil {
		return err
	}
	// Cross-hardware guard: a ratio threshold only means something when
	// both runs came off the same silicon. A baseline recorded on a
	// different CPU model demotes the gate to an informational report
	// instead of flapping CI with hardware deltas (-ignore-cpu overrides
	// for runners that report cosmetically different strings).
	sameCPU := cfg.ignoreCPU || base.cpu == "" || cur.cpu == "" || base.cpu == cur.cpu
	rows, regressed, missing := compare(base.samples, cur.samples, cfg)
	fmt.Fprintf(out, "rws-benchgate: threshold %.2fx, gate %s\n", cfg.threshold, cfg.match)
	fmt.Fprintf(out, "%-40s %14s %14s %8s  %s\n", "BENCHMARK", "BASE ns/op", "CURRENT ns/op", "DELTA", "VERDICT")
	for _, r := range rows {
		delta := "-"
		if r.baseNs > 0 && r.curNs > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(r.curNs-r.baseNs)/r.baseNs)
		}
		fmt.Fprintf(out, "%-40s %14.1f %14.1f %8s  %s\n", r.name, r.baseNs, r.curNs, delta, r.verdict)
	}
	// A vanished gated benchmark is a structural failure, not a timing
	// one: it fails the build regardless of what hardware the run landed
	// on — demoting it with the threshold would let a rename disarm the
	// gate on every non-reference machine.
	if missing {
		return fmt.Errorf("gated benchmark missing from the current run (renamed or deleted hot-path benchmark disarms its gate)")
	}
	if !sameCPU {
		fmt.Fprintf(out, "rws-benchgate: baseline cpu %q != current cpu %q: hardware deltas would drown the %.2fx threshold, gate demoted to informational (regenerate the baseline on this machine, or pass -ignore-cpu)\n",
			base.cpu, cur.cpu, cfg.threshold)
		return nil
	}
	if regressed {
		return fmt.Errorf("benchmark regression past %.2fx on the gated hot paths", cfg.threshold)
	}
	return nil
}
