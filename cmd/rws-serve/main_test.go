package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rwskit/internal/serve"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", ":9999", "-list", "x.json", "-poll", "30s"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":9999" || cfg.listPath != "x.json" || cfg.poll != 30*time.Second {
		t.Errorf("parseFlags = %+v", cfg)
	}
	if _, err := parseFlags([]string{"extra-arg"}); err == nil {
		t.Error("positional args should be rejected")
	}
	if _, err := parseFlags([]string{"-poll", "10s"}); err == nil {
		t.Error("-poll without -list should be rejected")
	}
	if _, err := parseFlags([]string{"-list", "x.json", "-poll", "-1s"}); err == nil {
		t.Error("negative -poll should be rejected")
	}
}

func TestLoadListEmbeddedAndFile(t *testing.T) {
	list, err := loadList("")
	if err != nil {
		t.Fatal(err)
	}
	if list.NumSets() != 41 {
		t.Errorf("embedded snapshot has %d sets, want 41", list.NumSets())
	}

	path := filepath.Join(t.TempDir(), "list.json")
	os.WriteFile(path, []byte(`{"sets":[{"primary":"https://a.com","associatedSites":["https://b.com"]}]}`), 0o644)
	list, err = loadList(path)
	if err != nil {
		t.Fatal(err)
	}
	if list.NumSets() != 1 || !list.SameSet("a.com", "b.com") {
		t.Errorf("file list = %d sets", list.NumSets())
	}

	if _, err := loadList(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

const oneSetJSON = `{"sets":[{"primary":"https://a.com","associatedSites":["https://b.com"]}]}`
const twoSetJSON = `{"sets":[
  {"primary":"https://a.com","associatedSites":["https://b.com"]},
  {"primary":"https://c.com","associatedSites":["https://d.com"]}
]}`

// TestReloader exercises the poll gates directly: mtime/size gate, hash
// gate, forced reload, and the diff log line.
func TestReloader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "list.json")
	if err := os.WriteFile(path, []byte(oneSetJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	list, err := loadList(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(list)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	rl := newReloader(path, srv.Snapshot().Hash(), fi)

	var log strings.Builder
	if rl.reload(srv, false, &log) {
		t.Error("unchanged file should not swap")
	}

	// Same content rewritten with a future mtime: the stat gate opens, the
	// hash gate must hold.
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	if rl.reload(srv, false, &log) {
		t.Error("identical content should not swap, even with a new mtime")
	}

	// Real change: must swap and log the diff.
	if err := os.WriteFile(path, []byte(twoSetJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	future = future.Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	log.Reset()
	if !rl.reload(srv, false, &log) {
		t.Fatal("changed content should swap")
	}
	if srv.List().NumSets() != 2 {
		t.Errorf("server has %d sets after reload, want 2", srv.List().NumSets())
	}
	if !strings.Contains(log.String(), "+sets 1 (c.com)") {
		t.Errorf("reload log should summarise the diff, got %q", log.String())
	}

	// Forced reload (SIGHUP path) with no change: hash gate still holds.
	if rl.reload(srv, true, &log) {
		t.Error("forced reload of identical content should not swap")
	}

	// Parse failure keeps the current list.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	log.Reset()
	if rl.reload(srv, true, &log) {
		t.Error("broken file should not swap")
	}
	if srv.List().NumSets() != 2 {
		t.Error("broken file must keep the current snapshot")
	}
	if !strings.Contains(log.String(), "keeping current list") {
		t.Errorf("broken reload should be logged, got %q", log.String())
	}
}

// TestRunServesPollsAndShutsDown drives the full binary loop: start on a
// random port, watch -poll pick up a list change, then cancel the context
// and require a clean drain.
func TestRunServesPollsAndShutsDown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "list.json")
	if err := os.WriteFile(path, []byte(oneSetJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-list", path, "-poll", "10ms"},
			func(addr string) { addrc <- addr })
	}()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	numSets := func() int {
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/stats", addr))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body serve.StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Sets
	}
	if n := numSets(); n != 1 {
		t.Fatalf("initial sets = %d, want 1", n)
	}

	// Change the file; the poll loop must swap it in without a signal.
	if err := os.WriteFile(path, []byte(twoSetJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for numSets() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("poll loop never picked up the new list")
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}
