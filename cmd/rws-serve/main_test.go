package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rwskit/internal/serve"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", ":9999", "-list", "x.json", "-poll", "30s"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":9999" || cfg.list != "x.json" || cfg.poll != 30*time.Second {
		t.Errorf("parseFlags = %+v", cfg)
	}
	if _, err := parseFlags([]string{"extra-arg"}); err == nil {
		t.Error("positional args should be rejected")
	}
	if _, err := parseFlags([]string{"-poll", "10s"}); err == nil {
		t.Error("-poll without -list should be rejected")
	}
	if _, err := parseFlags([]string{"-list", "x.json", "-poll", "-1s"}); err == nil {
		t.Error("negative -poll should be rejected")
	}
}

func TestOpenListEmbeddedFileAndURL(t *testing.T) {
	ctx := context.Background()
	src, list, _, err := openList(ctx, config{})
	if err != nil {
		t.Fatal(err)
	}
	if src != nil {
		t.Error("embedded snapshot should have no source")
	}
	if list.NumSets() != 41 {
		t.Errorf("embedded snapshot has %d sets, want 41", list.NumSets())
	}

	path := filepath.Join(t.TempDir(), "list.json")
	os.WriteFile(path, []byte(oneSetJSON), 0o644)
	src, list, meta, err := openList(ctx, config{list: path})
	if err != nil {
		t.Fatal(err)
	}
	if src == nil || list.NumSets() != 1 || !list.SameSet("a.com", "b.com") {
		t.Errorf("file list: src=%v, %d sets", src, list.NumSets())
	}
	// The boot version must carry the source's provenance — the file
	// mtime as the as-of time, not the boot instant.
	if v := meta.Version(); v.Source != path || !v.AsOf.Equal(meta.ModTime) {
		t.Errorf("boot meta version = %+v", v)
	}

	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, twoSetJSON)
	}))
	defer ts.Close()
	src, list, _, err = openList(ctx, config{list: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if src == nil || list.NumSets() != 2 {
		t.Errorf("url list: src=%v, %d sets", src, list.NumSets())
	}

	if _, _, _, err := openList(ctx, config{list: filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing file should fail")
	}
}

const oneSetJSON = `{"sets":[{"primary":"https://a.com","associatedSites":["https://b.com"]}]}`
const twoSetJSON = `{"sets":[
  {"primary":"https://a.com","associatedSites":["https://b.com"]},
  {"primary":"https://c.com","associatedSites":["https://d.com"]}
]}`

// startRun boots run() on a random port and returns the bound address
// plus the error channel it will exit on.
func startRun(t *testing.T, ctx context.Context, args []string) (string, chan error) {
	t.Helper()
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...),
			func(addr string) { addrc <- addr })
	}()
	select {
	case addr := <-addrc:
		return addr, errc
	case err := <-errc:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	return "", nil
}

func numSets(t *testing.T, addr string) int {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/stats", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Sets
}

func waitForSets(t *testing.T, addr string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for numSets(t, addr) != want {
		if time.Now().After(deadline) {
			t.Fatalf("server never reached %d sets", want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunServesPollsAndShutsDown drives the full binary loop on a file
// list: start on a random port, watch -poll pick up a list change, then
// cancel the context and require a clean drain.
func TestRunServesPollsAndShutsDown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "list.json")
	if err := os.WriteFile(path, []byte(oneSetJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addr, errc := startRun(t, ctx, []string{"-list", path, "-poll", "10ms"})
	if n := numSets(t, addr); n != 1 {
		t.Fatalf("initial sets = %d, want 1", n)
	}

	// Change the file; the poll loop must swap it in without a signal.
	if err := os.WriteFile(path, []byte(twoSetJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	waitForSets(t, addr, 2)

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

// TestRunServesFromURL drives the full binary loop on an http:// list:
// the initial fetch primes the ETag, unchanged polls are answered 304
// and produce no swap, and publishing a new body under a new ETag swaps
// the snapshot under live traffic.
func TestRunServesFromURL(t *testing.T) {
	var mu sync.Mutex
	body, etag := oneSetJSON, `"v1"`
	var hits, notModified int
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		hits++
		if r.Header.Get("If-None-Match") == etag {
			notModified++
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", etag)
		fmt.Fprint(w, body)
	}))
	defer upstream.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, errc := startRun(t, ctx, []string{"-list", upstream.URL, "-poll", "10ms"})
	if n := numSets(t, addr); n != 1 {
		t.Fatalf("initial sets = %d, want 1", n)
	}

	// Let several polls land 304 before publishing the change.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		nm := notModified
		mu.Unlock()
		if nm >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("conditional polls never reached the upstream")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := numSets(t, addr); n != 1 {
		t.Fatalf("sets changed to %d on 304 polls, want 1", n)
	}

	mu.Lock()
	body, etag = twoSetJSON, `"v2"`
	mu.Unlock()
	waitForSets(t, addr, 2)

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

func TestParseFlagsTimelineAndRetain(t *testing.T) {
	cfg, err := parseFlags([]string{"-timeline", "-retain", "20"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.timeline || cfg.retain != 20 {
		t.Errorf("parseFlags = %+v", cfg)
	}
	if cfg, err = parseFlags(nil); err != nil || cfg.timeline || cfg.retain != serve.DefaultRetain {
		t.Errorf("defaults = %+v, %v", cfg, err)
	}
	if _, err := parseFlags([]string{"-retain", "0"}); err == nil {
		t.Error("-retain 0 should be rejected")
	}
}

// TestRunTimeline boots the full binary loop with -timeline and checks
// the version plane end to end: every study-window month is retained,
// as_of resolves to the right month, and /v1/diff spans the window.
func TestRunTimeline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, errc := startRun(t, ctx, []string{"-timeline"})

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode
	}

	var vs serve.VersionsResponse
	if code := getJSON("/v1/versions", &vs); code != http.StatusOK {
		t.Fatalf("versions status %d", code)
	}
	// 15 months; the embedded boot list equals the final month, so the
	// store dedupes it into the timeline's last version.
	if vs.Retained != 15 {
		t.Fatalf("retained = %d, want the 15-month window", vs.Retained)
	}
	if !vs.Versions[len(vs.Versions)-1].Current {
		t.Error("the final month should be current")
	}

	// The current plane still serves the full snapshot.
	if n := numSets(t, addr); n != 41 {
		t.Errorf("current sets = %d, want 41", n)
	}

	// Time travel: January 2023 had only the first two sets.
	var st serve.StatsResponse
	if code := getJSON("/v1/stats?as_of=2023-01", &st); code != http.StatusOK {
		t.Fatalf("as_of stats status %d", code)
	}
	if st.Sets != vs.Versions[0].Sets || st.SnapshotHash != vs.Versions[0].Hash {
		t.Errorf("as_of=2023-01 stats = %d sets %.8s, want %d %.8s",
			st.Sets, st.SnapshotHash, vs.Versions[0].Sets, vs.Versions[0].Hash)
	}

	// Diff across the whole window reports the growth.
	var d serve.DiffResponse
	if code := getJSON("/v1/diff?from=2023-01&to=current", &d); code != http.StatusOK {
		t.Fatalf("diff status %d", code)
	}
	if d.Empty || len(d.AddedSets) != vs.Versions[len(vs.Versions)-1].Sets-vs.Versions[0].Sets {
		t.Errorf("window diff = %+v", d)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

func TestParseFlagsAmplify(t *testing.T) {
	cfg, err := parseFlags([]string{"-amplify", "5000", "-amplify-seed", "7", "-mem-budget", "1000000"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.amplify != 5000 || cfg.amplifySeed != 7 || cfg.memBudget != 1000000 {
		t.Errorf("parseFlags = %+v", cfg)
	}
	if _, err := parseFlags([]string{"-amplify", "10", "-list", "x.json"}); err == nil {
		t.Error("-amplify with -list should be rejected")
	}
	if _, err := parseFlags([]string{"-amplify", "10", "-timeline"}); err == nil {
		t.Error("-amplify with -timeline should be rejected")
	}
	if _, err := parseFlags([]string{"-mem-budget", "-1"}); err == nil {
		t.Error("negative -mem-budget should be rejected")
	}
}

// TestRunAmplified boots the binary from a synthetic amplified list and
// checks the scale plane end to end: the stats plane reports the
// requested set count, the boot version carries amplify provenance, and
// /v1/metrics exposes the snapshot build decisions.
func TestRunAmplified(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, errc := startRun(t, ctx, []string{"-amplify", "800", "-amplify-seed", "3"})
	if n := numSets(t, addr); n != 800 {
		t.Fatalf("amplified sets = %d, want 800", n)
	}

	var vs serve.VersionsResponse
	resp, err := http.Get("http://" + addr + "/v1/versions")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&vs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(vs.Versions) != 1 || vs.Versions[0].Source != "amplify:800:seed=3" {
		t.Errorf("versions = %+v, want one amplify:800:seed=3 version", vs.Versions)
	}

	var m serve.MetricsResponse
	resp, err = http.Get("http://" + addr + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.SnapshotBuild.Shards < 1 || m.SnapshotBuild.EstimatedBytes <= 0 {
		t.Errorf("snapshot_build = %+v", m.SnapshotBuild)
	}
	if m.SnapshotBuild.PrebakedSetsDropped {
		t.Error("unbudgeted boot should keep prebaked set slices")
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}
