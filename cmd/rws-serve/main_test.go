package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseFlags(t *testing.T) {
	addr, listPath, err := parseFlags([]string{"-addr", ":9999", "-list", "x.json"})
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":9999" || listPath != "x.json" {
		t.Errorf("parseFlags = %q, %q", addr, listPath)
	}
	if _, _, err := parseFlags([]string{"extra-arg"}); err == nil {
		t.Error("positional args should be rejected")
	}
}

func TestLoadListEmbeddedAndFile(t *testing.T) {
	list, err := loadList("")
	if err != nil {
		t.Fatal(err)
	}
	if list.NumSets() != 41 {
		t.Errorf("embedded snapshot has %d sets, want 41", list.NumSets())
	}

	path := filepath.Join(t.TempDir(), "list.json")
	os.WriteFile(path, []byte(`{"sets":[{"primary":"https://a.com","associatedSites":["https://b.com"]}]}`), 0o644)
	list, err = loadList(path)
	if err != nil {
		t.Fatal(err)
	}
	if list.NumSets() != 1 || !list.SameSet("a.com", "b.com") {
		t.Errorf("file list = %d sets", list.NumSets())
	}

	if _, err := loadList(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}
