// Command rws-serve exposes Related Website Sets queries as an HTTP
// service: relatedness checks, set lookups, storage-partitioning
// verdicts, list statistics, and server metrics.
//
// Usage:
//
//	rws-serve [-addr :8080] [-list file-or-url] [-poll interval]
//
// Without -list, the embedded reconstruction of the 26 March 2024
// snapshot is served. -list accepts a local JSON file path or an
// http(s):// URL (the upstream related_website_sets.JSON). Either way
// the list is hot-swapped without dropping traffic: SIGHUP forces a
// re-read, and -poll re-checks on a ticker — a stat(2) gated on
// mtime/size for files, a conditional GET (If-None-Match /
// If-Modified-Since, answered 304 when unchanged) for URLs — with every
// swap gated on the list content hash and logged with a diff summary.
// SIGINT/SIGTERM drain in-flight requests before exiting.
//
// Endpoints:
//
//	GET  /healthz
//	GET  /v1/sameset?a=SITE&b=SITE          (or ?pairs=a1,b1;a2,b2;...)
//	GET  /v1/set?site=SITE
//	GET  /v1/partition?top=SITE&embedded=SITE[&policy=rws|strict|prompt|legacy]
//	POST /v1/partition/batch
//	GET  /v1/stats
//	GET  /v1/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"rwskit/internal/core"
	"rwskit/internal/dataset"
	"rwskit/internal/serve"
	"rwskit/internal/source"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "rws-serve:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled (gracefully draining in-flight
// requests) or the listener fails. ready, if non-nil, is called with the
// bound address once the server is listening — the test hook.
func run(ctx context.Context, args []string, ready func(addr string)) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	src, list, err := openList(ctx, cfg.list)
	if err != nil {
		return err
	}
	srv := serve.New(list)

	// cancel releases the watcher and signal goroutines on every exit
	// path, including a listener failure where ctx was never cancelled.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	if src != nil {
		w := source.NewWatcher(src, cfg.poll, list, func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "rws-serve: "+format+"\n", a...)
		})
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer signal.Stop(hup)
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					w.Refresh()
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx, srv.SwapDeliver(os.Stderr))
		}()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := newHTTPServer(srv)
	fmt.Fprintf(os.Stderr, "rws-serve: serving %d sets on %s\n", list.NumSets(), ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		cancel()
		wg.Wait()
		return err
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rws-serve: shutting down, draining in-flight requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(shutCtx)
		<-errc // Serve has returned http.ErrServerClosed
		wg.Wait()
		return err
	}
}

// openList resolves the -list flag: empty serves the embedded snapshot
// (no source, no reloading), anything else opens a Source — file path or
// http(s) URL — and performs the initial fetch through it, so the
// source's freshness gates (stat, ETag/Last-Modified) are primed for the
// watcher's conditional polls.
func openList(ctx context.Context, spec string) (source.Source, *core.List, error) {
	if spec == "" {
		list, err := dataset.List()
		return nil, list, err
	}
	src := source.Open(spec)
	list, _, err := src.Fetch(ctx)
	if err != nil {
		return nil, nil, err
	}
	return src, list, nil
}

// newHTTPServer wraps a handler with the timeouts a public-facing
// service needs (slow-header and idle connections must not pin
// goroutines forever).
func newHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

type config struct {
	addr string
	list string
	poll time.Duration
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("rws-serve", flag.ContinueOnError)
	a := fs.String("addr", ":8080", "listen address")
	l := fs.String("list", "", "list JSON file or http(s) URL (default: embedded snapshot; SIGHUP reloads)")
	p := fs.Duration("poll", 0, "re-check -list on this interval (0 disables; stat/conditional-GET gated)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() != 0 {
		return config{}, fmt.Errorf("usage: rws-serve [-addr :8080] [-list file-or-url] [-poll interval]")
	}
	if *p > 0 && *l == "" {
		return config{}, fmt.Errorf("-poll requires -list")
	}
	if *p < 0 {
		return config{}, fmt.Errorf("-poll must be >= 0")
	}
	return config{addr: *a, list: *l, poll: *p}, nil
}
