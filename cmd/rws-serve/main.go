// Command rws-serve exposes Related Website Sets queries as an HTTP
// service: relatedness checks, set lookups, storage-partitioning
// verdicts, list statistics, and server metrics.
//
// Usage:
//
//	rws-serve [-addr :8080] [-list file] [-poll interval]
//
// Without -list, the embedded reconstruction of the 26 March 2024
// snapshot is served. With -list, SIGHUP re-reads the file and hot-swaps
// the snapshot without dropping traffic; -poll additionally re-reads it
// on a ticker, gated on mtime/size and the list content hash, logging
// the diff of what changed. SIGINT/SIGTERM drain in-flight requests
// before exiting.
//
// Endpoints:
//
//	GET  /healthz
//	GET  /v1/sameset?a=SITE&b=SITE          (or ?pairs=a1,b1;a2,b2;...)
//	GET  /v1/set?site=SITE
//	GET  /v1/partition?top=SITE&embedded=SITE[&policy=rws|strict|prompt|legacy]
//	POST /v1/partition/batch
//	GET  /v1/stats
//	GET  /v1/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"rwskit/internal/core"
	"rwskit/internal/dataset"
	"rwskit/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "rws-serve:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled (gracefully draining in-flight
// requests) or the listener fails. ready, if non-nil, is called with the
// bound address once the server is listening — the test hook.
func run(ctx context.Context, args []string, ready func(addr string)) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	// Stat the list file before reading it: if a writer lands between the
	// stat and the load, the recorded mtime is older than the file's, so
	// the next poll re-reads (the safe direction) instead of pairing the
	// new mtime with the old content and skipping forever.
	var preStat os.FileInfo
	if cfg.listPath != "" {
		preStat, _ = os.Stat(cfg.listPath)
	}
	list, err := loadList(cfg.listPath)
	if err != nil {
		return err
	}
	srv := serve.New(list)

	// cancel releases the reload goroutine on every exit path, including
	// a listener failure where ctx itself was never cancelled.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	if cfg.listPath != "" {
		rl := newReloader(cfg.listPath, srv.Snapshot().Hash(), preStat)
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		var tick <-chan time.Time
		var ticker *time.Ticker
		if cfg.poll > 0 {
			ticker = time.NewTicker(cfg.poll)
			tick = ticker.C
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer signal.Stop(hup)
			if ticker != nil {
				defer ticker.Stop()
			}
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					rl.reload(srv, true, os.Stderr)
				case <-tick:
					rl.reload(srv, false, os.Stderr)
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := newHTTPServer(srv)
	fmt.Fprintf(os.Stderr, "rws-serve: serving %d sets on %s\n", list.NumSets(), ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		cancel()
		wg.Wait()
		return err
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rws-serve: shutting down, draining in-flight requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(shutCtx)
		<-errc // Serve has returned http.ErrServerClosed
		wg.Wait()
		return err
	}
}

// newHTTPServer wraps a handler with the timeouts a public-facing
// service needs (slow-header and idle connections must not pin
// goroutines forever).
func newHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

type config struct {
	addr     string
	listPath string
	poll     time.Duration
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("rws-serve", flag.ContinueOnError)
	a := fs.String("addr", ":8080", "listen address")
	l := fs.String("list", "", "list JSON file (default: embedded snapshot; SIGHUP reloads)")
	p := fs.Duration("poll", 0, "re-read -list on this interval (0 disables; mtime/hash gated)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() != 0 {
		return config{}, fmt.Errorf("usage: rws-serve [-addr :8080] [-list file] [-poll interval]")
	}
	if *p > 0 && *l == "" {
		return config{}, fmt.Errorf("-poll requires -list")
	}
	if *p < 0 {
		return config{}, fmt.Errorf("-poll must be >= 0")
	}
	return config{addr: *a, listPath: *l, poll: *p}, nil
}

func loadList(path string) (*core.List, error) {
	if path == "" {
		return dataset.List()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return core.ParseJSON(data)
}

// reloader re-reads a list file into a server's snapshot. Polls are gated
// twice: on the file's (mtime, size), so an unchanged file costs one stat,
// and on the list content hash, so a rewrite with identical content (or a
// touch(1)) never swaps the snapshot. A SIGHUP forces the read but still
// respects the hash gate.
type reloader struct {
	path  string
	mtime time.Time
	size  int64
	hash  string
}

// newReloader seeds the stat gate from fi, the os.Stat taken BEFORE the
// initial load (nil if it failed — the first poll then re-reads).
func newReloader(path, hash string, fi os.FileInfo) *reloader {
	rl := &reloader{path: path, hash: hash}
	if fi != nil {
		rl.mtime, rl.size = fi.ModTime(), fi.Size()
	}
	return rl
}

// reload performs one reload attempt, logging to logw. It reports whether
// a new snapshot was swapped in.
func (rl *reloader) reload(srv *serve.Server, force bool, logw io.Writer) bool {
	fi, err := os.Stat(rl.path)
	if err != nil {
		fmt.Fprintf(logw, "rws-serve: stat %s failed, keeping current list: %v\n", rl.path, err)
		return false
	}
	if !force && fi.ModTime().Equal(rl.mtime) && fi.Size() == rl.size {
		return false
	}
	fresh, err := loadList(rl.path)
	if err != nil {
		fmt.Fprintf(logw, "rws-serve: reload failed, keeping current list: %v\n", err)
		return false
	}
	rl.mtime, rl.size = fi.ModTime(), fi.Size()
	h := fresh.Hash()
	if h == rl.hash {
		return false
	}
	diff := core.DiffLists(srv.List(), fresh)
	srv.Swap(fresh)
	rl.hash = h
	fmt.Fprintf(logw, "rws-serve: reloaded %s (%d sets): %s\n", rl.path, fresh.NumSets(), diffSummary(diff))
	return true
}

// diffSummary renders a core diff compactly for the reload log: counts
// plus the first few names per category.
func diffSummary(d core.Diff) string {
	if d.Empty() {
		return "no semantic changes"
	}
	var parts []string
	add := func(label string, items []string) {
		if len(items) == 0 {
			return
		}
		const show = 3
		names := items
		suffix := ""
		if len(names) > show {
			names = names[:show]
			suffix = ", ..."
		}
		parts = append(parts, fmt.Sprintf("%s %d (%s%s)", label, len(items), strings.Join(names, ", "), suffix))
	}
	add("+sets", d.AddedSets)
	add("-sets", d.RemovedSets)
	add("+members", d.AddedMembers)
	add("-members", d.RemovedMembers)
	return strings.Join(parts, ", ")
}
