// Command rws-serve exposes Related Website Sets queries as an HTTP
// service: relatedness checks, set lookups, storage-partitioning
// verdicts, list statistics, and server metrics.
//
// Usage:
//
//	rws-serve [-addr :8080] [-list file-or-url] [-poll interval]
//	          [-timeline] [-retain N] [-amplify N [-amplify-seed S]]
//	          [-mem-budget BYTES] [-strict-params]
//
// Without -list, the embedded reconstruction of the 26 March 2024
// snapshot is served. -amplify N boots from a deterministic synthetic
// list of N sets instead (rws-amplify's generator; -amplify-seed picks
// the seed) — the scale-tier target for load and soak testing. -mem-budget
// caps the estimated bytes of each snapshot's derived tables; over
// budget the snapshot degrades in tiers — the prebaked wire-format
// response bytes go first (tier "resp-dropped", the endpoints fall back
// to live encoding of the same values), then the prebaked /v1/set
// slices (tier "sets-dropped"); the tier is reported in /v1/metrics
// under snapshot_build, and a list that cannot fit even fully degraded
// is rejected. -list accepts a local JSON file path or an
// http(s):// URL (the upstream related_website_sets.JSON). Either way
// the list is hot-swapped without dropping traffic: SIGHUP forces a
// re-read, and -poll re-checks on a ticker — a stat(2) gated on
// mtime/size for files, a conditional GET (If-None-Match /
// If-Modified-Since, answered 304 when unchanged) for URLs — with every
// swap gated on the list content hash and logged with a diff summary.
// SIGINT/SIGTERM drain in-flight requests before exiting.
//
// Every node exports its current list at GET /v1/list with strong cache
// validators, so a serve node can be the origin for other serve nodes:
// point a follower's -list at a leader's /v1/list URL
// (`rws-serve -list http://leader:8080/v1/list -poll 1s`) and it tracks
// the leader through the same conditional-GET loop used for any remote
// list — an edge tier with zero new protocols. A follower detects the
// leader's replication headers and advertises its state (upstream,
// synced version hash, swap-propagation lag_ms, consecutive-304 streak)
// under "replication" in /v1/metrics.
//
// Superseded lists stay queryable: the server retains the last -retain
// versions (plus the whole timeline under -timeline) and answers
// version=/as_of= parameters, /v1/versions, and /v1/diff against them.
// -timeline preloads the paper's full 2023-01→2024-03 monthly study
// window at boot, so time-travel queries span the §4 longitudinal
// analyses; the final month is the current version (and a -list source,
// if given, installs on top of it).
//
// Endpoints:
//
//	GET  /healthz
//	GET  /v1/sameset?a=SITE&b=SITE          (or ?pairs=a1,b1;a2,b2;...)
//	GET  /v1/set?site=SITE
//	GET  /v1/partition?top=SITE&embedded=SITE[&policy=rws|strict|prompt|legacy]
//	POST /v1/partition/batch
//	GET  /v1/stats
//	GET  /v1/list
//	GET  /v1/metrics
//	GET  /v1/versions
//	GET  /v1/diff?from=SPEC&to=SPEC
//
// sameset, set, partition, and stats also accept version=HASHPREFIX or
// as_of=TIME ("2023-04", "2023-04-26", or RFC 3339).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"rwskit/internal/amplify"
	"rwskit/internal/core"
	"rwskit/internal/dataset"
	"rwskit/internal/history"
	"rwskit/internal/serve"
	"rwskit/internal/source"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "rws-serve:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled (gracefully draining in-flight
// requests) or the listener fails. ready, if non-nil, is called with the
// bound address once the server is listening — the test hook.
func run(ctx context.Context, args []string, ready func(addr string)) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	src, list, meta, err := openList(ctx, cfg)
	if err != nil {
		return err
	}
	srv, err := newServer(cfg, list, meta)
	if err != nil {
		return err
	}
	srv.SetStrictParams(cfg.strictParams)
	// A -list pointing at another rws-serve's /v1/list makes this node a
	// follower: the boot fetch carries the leader's replication headers,
	// so record the initial sync and advertise the state in /v1/metrics.
	if meta.Follows() {
		srv.FollowUpstream(cfg.list)
		srv.RecordReplicationSwap(meta)
		fmt.Fprintf(os.Stderr, "rws-serve: following leader %s (version %.12s)\n", cfg.list, meta.UpstreamVersion)
	}

	// cancel releases the watcher and signal goroutines on every exit
	// path, including a listener failure where ctx was never cancelled.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	if src != nil {
		w := source.NewWatcher(src, cfg.poll, list, func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "rws-serve: "+format+"\n", a...)
		})
		// Poll outcomes feed the replication counters (304 streak, poll
		// errors); cheap no-op bookkeeping when not following.
		w.OnPoll = srv.RecordReplicationPoll
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer signal.Stop(hup)
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					w.Refresh()
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx, srv.SwapDeliver(os.Stderr))
		}()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := newHTTPServer(srv)
	fmt.Fprintf(os.Stderr, "rws-serve: serving %d sets on %s\n", list.NumSets(), ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		cancel()
		wg.Wait()
		return err
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rws-serve: shutting down, draining in-flight requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(shutCtx)
		<-errc // Serve has returned http.ErrServerClosed
		wg.Wait()
		return err
	}
}

// openList resolves the boot list: -amplify generates a synthetic
// scale-tier list (no source, no reloading), an empty -list serves the
// embedded snapshot, and anything else opens a Source — file path or
// http(s) URL — and performs the initial fetch through it, so the
// source's freshness gates (stat, ETag/Last-Modified) are primed for the
// watcher's conditional polls and the boot version carries the same
// provenance every later swap of the source will.
func openList(ctx context.Context, cfg config) (source.Source, *core.List, source.Meta, error) {
	if cfg.amplify > 0 {
		list, err := amplify.Generate(amplify.Config{Sets: cfg.amplify, Seed: cfg.amplifySeed})
		return nil, list, source.Meta{}, err
	}
	if cfg.list == "" {
		list, err := dataset.List()
		return nil, list, source.Meta{}, err
	}
	src := source.Open(cfg.list)
	list, meta, err := src.Fetch(ctx)
	if err != nil {
		return nil, nil, source.Meta{}, err
	}
	return src, list, meta, nil
}

// newServer builds the version store behind the server: optionally the
// full monthly study-window timeline (-timeline), then the boot list as
// the current version. With -timeline the capacity is widened to hold
// every month plus headroom for live swaps, so preloaded history is not
// immediately evicted by the poll loop.
func newServer(cfg config, list *core.List, meta source.Meta) (*serve.Server, error) {
	capacity := cfg.retain
	opts := serve.SnapshotOptions{MemoryBudget: cfg.memBudget}
	var st *serve.Store
	if cfg.timeline {
		tl, err := history.Build()
		if err != nil {
			return nil, err
		}
		if capacity < len(tl.Snapshots)+1 {
			capacity = len(tl.Snapshots) + 1
		}
		st = serve.NewStoreWith(capacity, opts)
		boot := time.Now()
		for _, snap := range tl.Snapshots {
			asOf, err := time.Parse("2006-01", snap.Month)
			if err != nil {
				return nil, fmt.Errorf("timeline month %q: %w", snap.Month, err)
			}
			if _, err := st.AddList(snap.List, core.Version{
				Source:     "timeline:" + snap.Month,
				ObservedAt: boot,
				AsOf:       asOf,
			}); err != nil {
				return nil, fmt.Errorf("timeline month %s: %w", snap.Month, err)
			}
		}
		fmt.Fprintf(os.Stderr, "rws-serve: timeline preloaded %d monthly versions (%s..%s)\n",
			st.Len(), tl.Snapshots[0].Month, tl.Final().Month)
	} else {
		st = serve.NewStoreWith(capacity, opts)
	}
	// The boot list's version: the source's own provenance (file mtime /
	// Last-Modified as the as-of time, exactly what SwapDeliver files
	// later revisions under), the amplifier's parameters, or the embedded
	// snapshot's date. When the timeline's final month already carries
	// this content (the embedded snapshot IS the final month), keep the
	// timeline provenance instead of re-filing it under "embedded".
	ver := meta.Version()
	switch {
	case cfg.amplify > 0:
		ver.Source = fmt.Sprintf("amplify:%d:seed=%d", cfg.amplify, cfg.amplifySeed)
		ver.ObservedAt = time.Now()
		ver.AsOf = ver.ObservedAt
	case cfg.list == "":
		ver.Source = "embedded"
		ver.ObservedAt = time.Now()
		ver.AsOf = ver.ObservedAt
		if t, err := time.Parse("2006-01-02", dataset.SnapshotDate); err == nil {
			ver.AsOf = t
		}
	}
	if cur := st.Current(); cur == nil || cur.Hash() != list.Hash() {
		snap, err := st.AddList(list, ver)
		if err != nil {
			return nil, fmt.Errorf("boot list: %w", err)
		}
		if info := snap.BuildInfo(); info.Tier != "" && info.Tier != "full" {
			fmt.Fprintf(os.Stderr, "rws-serve: memory budget %d degraded the snapshot to tier %q (estimated %d bytes retained)\n",
				info.MemoryBudget, info.Tier, info.EstimatedBytes)
		}
	}
	return serve.NewFromStore(st), nil
}

// newHTTPServer wraps a handler with the timeouts a public-facing
// service needs (slow-header and idle connections must not pin
// goroutines forever).
func newHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

type config struct {
	addr         string
	list         string
	poll         time.Duration
	timeline     bool
	retain       int
	amplify      int
	amplifySeed  int64
	memBudget    int64
	strictParams bool
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("rws-serve", flag.ContinueOnError)
	a := fs.String("addr", ":8080", "listen address")
	l := fs.String("list", "", "list JSON file or http(s) URL (default: embedded snapshot; SIGHUP reloads)")
	p := fs.Duration("poll", 0, "re-check -list on this interval (0 disables; stat/conditional-GET gated)")
	tl := fs.Bool("timeline", false, "preload the 2023-01..2024-03 monthly snapshots for as_of/diff queries")
	r := fs.Int("retain", serve.DefaultRetain, "list versions kept queryable (widened to fit -timeline)")
	amp := fs.Int("amplify", 0, "boot from a synthetic amplified list of N sets (scale testing; excludes -list/-timeline)")
	ampSeed := fs.Int64("amplify-seed", 1, "seed for -amplify (same seed reproduces the same list)")
	mb := fs.Int64("mem-budget", 0, "snapshot memory budget in bytes, 0 = unlimited (degrades before failing; see /v1/metrics)")
	sp := fs.Bool("strict-params", false, "reject unknown query parameters with a bad_request envelope on every endpoint (new endpoints always enforce)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() != 0 {
		return config{}, fmt.Errorf("usage: rws-serve [-addr :8080] [-list file-or-url] [-poll interval] [-timeline] [-retain N] [-amplify N [-amplify-seed S]] [-mem-budget BYTES]")
	}
	if *p > 0 && *l == "" {
		return config{}, fmt.Errorf("-poll requires -list")
	}
	if *p < 0 {
		return config{}, fmt.Errorf("-poll must be >= 0")
	}
	if *r < 1 {
		return config{}, fmt.Errorf("-retain must be >= 1")
	}
	if *amp < 0 {
		return config{}, fmt.Errorf("-amplify must be >= 0")
	}
	if *amp > 0 && (*l != "" || *tl) {
		return config{}, fmt.Errorf("-amplify excludes -list and -timeline")
	}
	if *mb < 0 {
		return config{}, fmt.Errorf("-mem-budget must be >= 0")
	}
	return config{addr: *a, list: *l, poll: *p, timeline: *tl, retain: *r, amplify: *amp, amplifySeed: *ampSeed, memBudget: *mb, strictParams: *sp}, nil
}
