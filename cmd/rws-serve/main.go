// Command rws-serve exposes Related Website Sets queries as an HTTP
// service: relatedness checks, set lookups, storage-partitioning
// verdicts, and list statistics.
//
// Usage:
//
//	rws-serve [-addr :8080] [-list file]
//
// Without -list, the embedded reconstruction of the 26 March 2024
// snapshot is served. With -list, SIGHUP re-reads the file and hot-swaps
// the snapshot without dropping traffic.
//
// Endpoints:
//
//	GET /healthz
//	GET /v1/sameset?a=SITE&b=SITE
//	GET /v1/set?site=SITE
//	GET /v1/partition?top=SITE&embedded=SITE[&policy=rws|strict|prompt|legacy]
//	GET /v1/stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rwskit/internal/core"
	"rwskit/internal/dataset"
	"rwskit/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rws-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	addr, listPath, err := parseFlags(args)
	if err != nil {
		return err
	}
	list, err := loadList(listPath)
	if err != nil {
		return err
	}
	srv := serve.New(list)

	if listPath != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				fresh, err := loadList(listPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "rws-serve: reload failed, keeping current list:", err)
					continue
				}
				srv.Swap(fresh)
				fmt.Fprintf(os.Stderr, "rws-serve: reloaded %s (%d sets)\n", listPath, fresh.NumSets())
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "rws-serve: serving %d sets on %s\n", list.NumSets(), addr)
	return newHTTPServer(addr, srv).ListenAndServe()
}

// newHTTPServer wraps a handler with the timeouts a public-facing
// service needs (slow-header and idle connections must not pin
// goroutines forever).
func newHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

func parseFlags(args []string) (addr, listPath string, err error) {
	fs := flag.NewFlagSet("rws-serve", flag.ContinueOnError)
	a := fs.String("addr", ":8080", "listen address")
	l := fs.String("list", "", "list JSON file (default: embedded snapshot; SIGHUP reloads)")
	if err := fs.Parse(args); err != nil {
		return "", "", err
	}
	if fs.NArg() != 0 {
		return "", "", fmt.Errorf("usage: rws-serve [-addr :8080] [-list file]")
	}
	return *a, *l, nil
}

func loadList(path string) (*core.List, error) {
	if path == "" {
		return dataset.List()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return core.ParseJSON(data)
}
