package main

import (
	"bytes"
	"strings"
	"testing"
)

const fixtures = "../../internal/lint/testdata/src/"

// TestKnownBadExitsNonzero is the driver-level gate proof: rws-lint on
// a package with real violations must exit 1 and name the analyzers.
func TestKnownBadExitsNonzero(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{fixtures + "knownbad"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	for _, az := range []string{"lockguard", "hotpath"} {
		if !strings.Contains(out.String(), az) {
			t.Errorf("output missing a %s diagnostic:\n%s", az, out.String())
		}
	}
}

func TestCleanExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{fixtures + "clean"}, &out, &errw); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

func TestListFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exit code = %d, want 0", code)
	}
	for _, az := range []string{"lockguard", "hotpath", "determinism", "jsonenvelope", "atomicptr"} {
		if !strings.Contains(out.String(), az) {
			t.Errorf("-list missing %s:\n%s", az, out.String())
		}
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"no/such/dir"}, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
