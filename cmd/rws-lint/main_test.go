package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const fixtures = "../../internal/lint/testdata/src/"

// TestKnownBadExitsNonzero is the driver-level gate proof: rws-lint on
// a package with real violations must exit 1 and name the analyzers —
// including the interprocedural ones.
func TestKnownBadExitsNonzero(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{fixtures + "knownbad"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	for _, az := range []string{"lockguard", "hotpath", "lockorder", "goroleak", "ctxflow"} {
		if !strings.Contains(out.String(), az) {
			t.Errorf("output missing a %s diagnostic:\n%s", az, out.String())
		}
	}
}

// TestKnownBadJSON proves -json emits a parseable array carrying the
// same findings.
func TestKnownBadJSON(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-json", fixtures + "knownbad"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errw.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json produced an empty array for knownbad")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

// TestAllocGateFlag runs the escape-analysis gate: knownbad's hotpath
// Format heap-allocates (fmt.Sprintf boxes its argument), clean's
// Shard does not.
func TestAllocGateFlag(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-allocgate", fixtures + "knownbad"}, &out, &errw)
	if code != 1 {
		t.Fatalf("-allocgate knownbad exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "allocgate") || !strings.Contains(out.String(), "Format") {
		t.Errorf("-allocgate output missing the Format finding:\n%s", out.String())
	}
	out.Reset()
	errw.Reset()
	if code := run([]string{"-allocgate", fixtures + "clean"}, &out, &errw); code != 0 {
		t.Fatalf("-allocgate clean exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
}

func TestCleanExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{fixtures + "clean"}, &out, &errw); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

func TestListFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exit code = %d, want 0", code)
	}
	for _, az := range []string{"lockguard", "hotpath", "determinism", "jsonenvelope", "atomicptr", "lockorder", "goroleak", "ctxflow", "allocgate"} {
		if !strings.Contains(out.String(), az) {
			t.Errorf("-list missing %s:\n%s", az, out.String())
		}
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"no/such/dir"}, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
