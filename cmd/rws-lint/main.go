// Command rws-lint is the repo's invariant multichecker: it runs the
// internal/lint analyzer suite — lockguard, hotpath, determinism,
// jsonenvelope, atomicptr — over the module and exits nonzero on any
// finding. CI runs it as a hard gate; run it locally with:
//
//	go run ./cmd/rws-lint ./...
//
// Usage:
//
//	rws-lint [-list] [pattern ...]
//
// Patterns are "./..." (every package in the enclosing module, the
// default), module import paths ("rwskit/internal/serve"), or plain
// directories (./internal/serve, or a fixture directory under
// testdata). The suite is pure standard library: no x/tools, no
// network, no build cache beyond parsing GOROOT sources for type
// information.
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rwskit/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("rws-lint", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, az := range lint.All() {
			fmt.Fprintf(out, "%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "rws-lint:", err)
		return 2
	}
	diags, err := lint.LintPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(errw, "rws-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(out, "rws-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
