// Command rws-lint is the repo's invariant multichecker: it runs the
// internal/lint analyzer suite — lockguard, hotpath, determinism,
// jsonenvelope, atomicptr, plus the interprocedural lockorder,
// goroleak, and ctxflow analyzers — over the module and exits nonzero
// on any finding. CI runs it as a hard gate; run it locally with:
//
//	go run ./cmd/rws-lint ./...
//
// Usage:
//
//	rws-lint [-list] [-json] [-allocgate] [pattern ...]
//
// Patterns are "./..." (every package in the enclosing module, the
// default), module import paths ("rwskit/internal/serve"), or plain
// directories (./internal/serve, or a fixture directory under
// testdata). The default suite is pure standard library: no x/tools,
// no network, no build cache beyond parsing GOROOT sources for type
// information. -json emits the findings as a JSON array (file, line,
// col, analyzer, message) instead of text. -allocgate runs the
// compiler escape-analysis gate instead of the in-process analyzers:
// it shells out to go build -gcflags=-m=2 and fails if any
// //rws:hotpath or //rws:allocfree function heap-allocates (see
// internal/lint/allocgate.go).
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rwskit/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("rws-lint", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit the findings as a JSON array")
	allocgate := fs.Bool("allocgate", false, "run the compiler escape-analysis gate instead of the in-process analyzers")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, az := range lint.All() {
			fmt.Fprintf(out, "%-12s %s\n", az.Name, az.Doc)
		}
		fmt.Fprintf(out, "%-12s %s\n", "allocgate", "(-allocgate) //rws:hotpath and //rws:allocfree functions are allocation-free per the compiler's own escape analysis")
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "rws-lint:", err)
		return 2
	}
	var diags []lint.Diagnostic
	if *allocgate {
		diags, err = lint.AllocGatePatterns(cwd, patterns)
	} else {
		diags, err = lint.LintPatterns(cwd, patterns)
	}
	if err != nil {
		fmt.Fprintln(errw, "rws-lint:", err)
		return 2
	}
	if *jsonOut {
		if err := lint.EncodeJSON(out, diags); err != nil {
			fmt.Fprintln(errw, "rws-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(out, "rws-lint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
