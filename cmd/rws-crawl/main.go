// Command rws-crawl spins up the synthetic web, crawls every member of the
// embedded RWS snapshot over real HTTP, and reports the Figure 3 and
// Figure 4 relatedness metrics for each set: SLD edit distances and HTML
// similarity of members against their primary.
//
// Usage:
//
//	rws-crawl [-seed N] [-set primary] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"

	"rwskit"
	"rwskit/internal/crawler"
	"rwskit/internal/dataset"
	"rwskit/internal/editdist"
	"rwskit/internal/htmlsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rws-crawl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rws-crawl", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "synthetic web seed")
	only := fs.String("set", "", "limit to the set with this primary")
	workers := fs.Int("workers", 8, "concurrent fetchers")
	if err := fs.Parse(args); err != nil {
		return err
	}

	list, err := rwskit.Snapshot()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	web, err := dataset.BuildWeb(rng, nil)
	if err != nil {
		return err
	}
	srv := httptest.NewServer(web)
	defer srv.Close()
	c, err := crawler.NewForServer(srv.URL, srv.Client(), *workers)
	if err != nil {
		return err
	}
	ctx := context.Background()

	for _, set := range list.Sets() {
		if *only != "" && set.Primary != *only {
			continue
		}
		primaryPage := c.Fetch(ctx, crawler.Request{Host: set.Primary, Path: "/"})
		if !primaryPage.OK() {
			return fmt.Errorf("fetching %s: %v (status %d)", set.Primary, primaryPage.Err, primaryPage.StatusCode)
		}
		primarySLD, err := rwskit.SLD(set.Primary)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "set %s (%d members)\n", set.Primary, set.Size())
		for _, m := range set.Members() {
			if m.Role == rwskit.RolePrimary {
				continue
			}
			page := c.Fetch(ctx, crawler.Request{Host: m.Site, Path: "/"})
			if !page.OK() {
				return fmt.Errorf("fetching %s: %v (status %d)", m.Site, page.Err, page.StatusCode)
			}
			sld, err := rwskit.SLD(m.Site)
			if err != nil {
				return err
			}
			scores := htmlsim.Compare(primaryPage.Body, page.Body)
			fmt.Fprintf(out, "  %-11s %-28s sld-dist=%-3d style=%.3f structural=%.3f joint=%.3f\n",
				m.Role, m.Site, editdist.Levenshtein(primarySLD, sld),
				scores.Style, scores.Structural, scores.Joint)
		}
	}
	return nil
}
