package main

import (
	"strings"
	"testing"
)

func TestCrawlSingleSet(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-set", "bild.de"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "set bild.de") {
		t.Errorf("output:\n%s", out)
	}
	for _, member := range []string{"autobild.de", "computerbild.de", "bild.at"} {
		if !strings.Contains(out, member) {
			t.Errorf("missing member %s:\n%s", member, out)
		}
	}
	if !strings.Contains(out, "joint=") || !strings.Contains(out, "sld-dist=") {
		t.Errorf("missing metrics:\n%s", out)
	}
}

func TestCrawlAllSets(t *testing.T) {
	if testing.Short() {
		t.Skip("full crawl")
	}
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "set "); n < 41 {
		t.Errorf("sets crawled = %d, want 41", n)
	}
}
