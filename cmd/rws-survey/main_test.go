package main

import (
	"strings"
	"testing"
)

func TestSurveyOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-seed", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Figure 1", "Figure 2", "Table 2",
		"RWS (same set)", "Key takeaways",
		"paper: 36.8%", "paper: 93.7%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}
