// Command rws-survey runs the §3 relatedness user-study simulation and
// prints Tables 1 and 2 and Figures 1 and 2.
//
// Usage:
//
//	rws-survey [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"rwskit"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rws-survey:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rws-survey", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	for _, id := range []string{"table1", "figure1", "figure2", "table2"} {
		a, err := rwskit.RunExperiment(ctx, *seed, id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", a.Rendered)
	}
	// Headline takeaways, as the paper frames them.
	t1, err := rwskit.RunExperiment(ctx, *seed, "table1")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Key takeaways (seed %d):\n", *seed)
	fmt.Fprintf(out, "  - %.1f%% of same-set responses judged the sites UNRELATED (paper: 36.8%%)\n",
		100*t1.Metrics["privacy_harming_rate"])
	fmt.Fprintf(out, "  - %.1f%% of non-set responses correctly judged unrelated (paper: 93.7%%)\n",
		100*t1.Metrics["correct_rejection_rate"])
	fmt.Fprintf(out, "  - %.1f%% of participants made at least one privacy-harming error (paper: 73.3%%)\n",
		100*t1.Metrics["participants_with_error_frac"])
	return nil
}
