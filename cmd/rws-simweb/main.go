// Command rws-simweb serves the synthetic web used throughout the
// reproduction: every member of the embedded RWS snapshot (with correct
// /.well-known/related-website-set.json files and service-site headers)
// plus the 200 categorised top sites. Requests are routed by Host header,
// so point clients at the listen address with the target domain as Host:
//
//	rws-simweb -addr :8080 &
//	curl -H 'Host: bild.de' http://localhost:8080/
//	curl -H 'Host: autobild.de' http://localhost:8080/.well-known/related-website-set.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"

	"rwskit/internal/dataset"
	"rwskit/internal/wellknown"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rws-simweb:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rws-simweb", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	seed := fs.Int64("seed", 1, "synthetic web seed")
	withTops := fs.Bool("topsites", true, "also serve the 200 synthetic top sites")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	topSites, _ := dataset.TopSites(rng)
	if !*withTops {
		topSites = nil
	}
	web, err := dataset.BuildWeb(rng, topSites)
	if err != nil {
		return err
	}
	list, err := dataset.List()
	if err != nil {
		return err
	}
	for _, s := range list.Sets() {
		if err := wellknown.Mount(web, s); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "rws-simweb: serving %d domains on %s (route by Host header)\n",
		len(web.Domains()), ln.Addr())
	fmt.Fprintf(out, "example: curl -H 'Host: bild.de' http://%s/\n", ln.Addr())
	return http.Serve(ln, web)
}
