// Command rws-amplify emits deterministic, seeded synthetic Related
// Website Sets lists at scales the real list never reaches, shaped by
// the embedded snapshot's empirical composition — the scale substrate
// for benchmarking and stress-testing the serve plane at 10⁴–10⁶ sets.
//
// Usage:
//
//	rws-amplify -sets N [-seed 1] [-o FILE] [-hash] [-stats]
//	            [-validate] [-build [-shards N] [-mem-budget BYTES]]
//
// By default the list is written to stdout (or -o FILE) as upstream
// related_website_sets.JSON, directly servable by rws-serve -list.
// The non-emitting modes avoid materialising hundreds of megabytes of
// JSON at the million-set tier:
//
//	-hash      print "sets seed hash" and emit no JSON (the determinism
//	           artifact CI uploads: same seed ⇒ same hash, always)
//	-stats     print composition statistics instead of JSON
//	-validate  run the structural submission checks over every generated
//	           set; any issue fails the run
//	-build     build a serve snapshot from the generated list (sharded
//	           parallel construction, honoring -shards/-mem-budget) and
//	           report build time and memory, instead of emitting JSON
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"rwskit/internal/amplify"
	"rwskit/internal/psl"
	"rwskit/internal/serve"
	"rwskit/internal/validate"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rws-amplify:", err)
		os.Exit(1)
	}
}

type config struct {
	sets      int
	seed      int64
	out       string
	hashOnly  bool
	stats     bool
	validate  bool
	build     bool
	shards    int
	memBudget int64
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("rws-amplify", flag.ContinueOnError)
	sets := fs.Int("sets", 0, "number of sets to generate (required)")
	seed := fs.Int64("seed", 1, "generation seed (same seed reproduces the same list)")
	out := fs.String("o", "", "write the list JSON to this file (default stdout)")
	hash := fs.Bool("hash", false, "print \"sets seed hash\" instead of emitting JSON")
	stats := fs.Bool("stats", false, "print composition statistics instead of emitting JSON")
	val := fs.Bool("validate", false, "run structural submission checks over every set; issues fail the run")
	build := fs.Bool("build", false, "build a serve snapshot and report build time/memory instead of emitting JSON")
	shards := fs.Int("shards", 0, "snapshot build shards for -build (0: GOMAXPROCS)")
	budget := fs.Int64("mem-budget", 0, "snapshot memory budget in bytes for -build (0: unlimited)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() != 0 {
		return config{}, fmt.Errorf("usage: rws-amplify -sets N [-seed S] [-o FILE] [-hash|-stats|-build] [-validate]")
	}
	if *sets < 1 {
		return config{}, fmt.Errorf("-sets must be >= 1")
	}
	return config{
		sets: *sets, seed: *seed, out: *out, hashOnly: *hash, stats: *stats,
		validate: *val, build: *build, shards: *shards, memBudget: *budget,
	}, nil
}

func run(args []string, stdout io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	genStart := time.Now()
	list, err := amplify.Generate(amplify.Config{Sets: cfg.sets, Seed: cfg.seed})
	if err != nil {
		return err
	}
	genElapsed := time.Since(genStart)

	if cfg.validate {
		v := validate.New(psl.Default(), nil, nil)
		ctx := context.Background()
		issues := 0
		for _, s := range list.Sets() {
			rep := v.ValidateSet(ctx, s)
			for _, issue := range rep.Issues {
				fmt.Fprintf(os.Stderr, "rws-amplify: %s: %s\n", s.Primary, issue)
				issues++
			}
		}
		if issues > 0 {
			return fmt.Errorf("%d validation issue(s) across %d sets", issues, list.NumSets())
		}
		fmt.Fprintf(os.Stderr, "rws-amplify: all %d sets pass structural validation\n", list.NumSets())
	}

	switch {
	case cfg.hashOnly:
		fmt.Fprintf(stdout, "%d %d %s\n", cfg.sets, cfg.seed, list.Hash())
		return nil
	case cfg.stats:
		st := list.Stats()
		fmt.Fprintf(stdout, "sets                 %d\n", st.Sets)
		fmt.Fprintf(stdout, "sites                %d\n", list.NumSites())
		fmt.Fprintf(stdout, "associated           %d (%.1f%% of sets, mean %.2f/set)\n",
			st.AssociatedSites, 100*st.FracSetsWithAssociated(), st.MeanAssociatedPerSet)
		fmt.Fprintf(stdout, "service              %d (%.1f%% of sets)\n", st.ServiceSites, 100*st.FracSetsWithService())
		fmt.Fprintf(stdout, "cctld                %d (%.1f%% of sets)\n", st.CCTLDSites, 100*st.FracSetsWithCCTLD())
		fmt.Fprintf(stdout, "generate_time        %s\n", genElapsed.Round(time.Millisecond))
		fmt.Fprintf(stdout, "hash                 %s\n", list.Hash())
		return nil
	case cfg.build:
		var before runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		snap, err := serve.BuildSnapshot(list, serve.SnapshotOptions{Shards: cfg.shards, MemoryBudget: cfg.memBudget})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		info := snap.BuildInfo()
		fmt.Fprintf(stdout, "sets                 %d\n", snap.NumSets())
		fmt.Fprintf(stdout, "sites                %d\n", snap.NumSites())
		fmt.Fprintf(stdout, "generate_time        %s\n", genElapsed.Round(time.Millisecond))
		fmt.Fprintf(stdout, "build_time           %s\n", elapsed.Round(time.Millisecond))
		fmt.Fprintf(stdout, "build_shards         %d\n", info.Shards)
		fmt.Fprintf(stdout, "estimated_bytes      %d\n", info.EstimatedBytes)
		fmt.Fprintf(stdout, "memory_budget        %d\n", info.MemoryBudget)
		fmt.Fprintf(stdout, "prebaked_set_dropped %v\n", info.PrebakedSetsDropped)
		fmt.Fprintf(stdout, "snapshot_tier        %s\n", info.Tier)
		fmt.Fprintf(stdout, "heap_delta_bytes     %d\n", int64(after.HeapAlloc)-int64(before.HeapAlloc))
		return nil
	}

	raw, err := list.MarshalJSONIndent()
	if err != nil {
		return err
	}
	w := stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		w = bw
	}
	if _, err := w.Write(raw); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}
