package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rwskit/internal/core"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestHashModeDeterministic(t *testing.T) {
	a := runCapture(t, "-sets", "50", "-seed", "9", "-hash")
	b := runCapture(t, "-sets", "50", "-seed", "9", "-hash")
	if a != b {
		t.Errorf("same seed produced different hash lines:\n%s%s", a, b)
	}
	fields := strings.Fields(a)
	if len(fields) != 3 || fields[0] != "50" || fields[1] != "9" || len(fields[2]) != 64 {
		t.Errorf("hash line = %q, want \"50 9 <64-hex>\"", a)
	}
	c := runCapture(t, "-sets", "50", "-seed", "10", "-hash")
	if strings.Fields(c)[2] == fields[2] {
		t.Errorf("different seeds produced the same hash %s", fields[2])
	}
}

func TestEmitReparses(t *testing.T) {
	out := filepath.Join(t.TempDir(), "list.json")
	runCapture(t, "-sets", "40", "-seed", "3", "-o", out)
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	list, err := core.ParseJSON(raw)
	if err != nil {
		t.Fatalf("re-parsing emitted JSON: %v", err)
	}
	if list.NumSets() != 40 {
		t.Errorf("emitted list has %d sets, want 40", list.NumSets())
	}
	hashLine := runCapture(t, "-sets", "40", "-seed", "3", "-hash")
	if want := strings.Fields(hashLine)[2]; list.Hash() != want {
		t.Errorf("emitted list hash %.12s != -hash mode %.12s", list.Hash(), want)
	}
}

func TestValidateMode(t *testing.T) {
	runCapture(t, "-sets", "60", "-seed", "2", "-validate", "-hash")
}

func TestBuildMode(t *testing.T) {
	out := runCapture(t, "-sets", "30", "-seed", "1", "-build", "-shards", "2")
	for _, want := range []string{"build_time", "build_shards         2", "estimated_bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("build output missing %q:\n%s", want, out)
		}
	}
}

func TestFlagErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-seed", "1"}); err == nil {
		t.Error("missing -sets should error")
	}
	if _, err := parseFlags([]string{"-sets", "5", "stray"}); err == nil {
		t.Error("stray positional arg should error")
	}
}
