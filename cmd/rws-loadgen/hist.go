package main

import (
	"math/bits"
	"time"
)

// latHist is a log-linear latency histogram in the HdrHistogram family.
// Values below 2^(histSubBits+1) nanoseconds are recorded exactly; above
// that each power-of-two range splits into 2^histSubBits linear
// sub-buckets, so the worst-case quantization error is 2^-histSubBits
// (~1.6%) of the value. A fixed 4096-bucket array covers the whole
// int64 nanosecond range, so recording is a bounds check and an
// increment — no allocation, no comparison sort over millions of
// samples, and open-loop runs can record every request even when the
// schedule drives tens of thousands per second.
type latHist struct {
	counts [histBuckets]uint64
	total  uint64
	max    time.Duration
}

const (
	histSubBits = 6
	histSub     = 1 << histSubBits
	// Highest index histIndex can produce for a 63-bit value is
	// (63-histSubBits-1)*histSub + 2*histSub - 1 < 64*histSub.
	histBuckets = 64 * histSub
)

// histIndex maps a non-negative nanosecond value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	b := bits.Len64(u)
	if b <= histSubBits+1 {
		return int(u) // exact region: u < 2*histSub
	}
	shift := b - histSubBits - 1
	return shift*histSub + int(u>>shift)
}

// histValue is the upper edge of bucket i — quantiles read the
// pessimistic end of the bucket, never an optimistic one.
func histValue(i int) int64 {
	if i < 2*histSub {
		return int64(i)
	}
	shift := i/histSub - 1
	top := int64(i - shift*histSub)
	return (top+1)<<shift - 1
}

func (h *latHist) record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if d > h.max {
		h.max = d
	}
	h.counts[histIndex(int64(d))]++
	h.total++
}

func (h *latHist) merge(o *latHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the latency at quantile q in [0, 1], clamped to the
// exact observed maximum so p100 (and any bucket edge beyond it) never
// overstates the tail.
func (h *latHist) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if v := time.Duration(histValue(i)); v < h.max {
				return v
			}
			return h.max
		}
	}
	return h.max
}
