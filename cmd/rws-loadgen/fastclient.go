package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/url"
	"time"
)

// fastClient is a minimal HTTP/1.1 keep-alive GET client for -fast
// runs. net/http costs tens of microseconds per request in goroutine
// handoffs, header maps, and response plumbing; on a small box that
// client-side overhead, not the server, caps the measured throughput.
// This client holds one persistent connection, writes the request line
// from a reused buffer, and discards the body in place — understanding
// both Content-Length and chunked framing, since the serve plane now
// lets net/http pick chunked encoding for bodies it doesn't buffer.
//
// Each worker owns one fastClient; the type is not safe for concurrent
// use.
type fastClient struct {
	addr    string // dial target, host:port
	host    string // Host header value
	timeout time.Duration
	conn    net.Conn
	br      *bufio.Reader
	req     []byte
}

// fastTarget validates -fast's target URL once up front and returns the
// dial address and Host header every worker's client will use.
func fastTarget(target string) (addr, host string, err error) {
	u, err := url.Parse(target)
	if err != nil {
		return "", "", err
	}
	if u.Scheme != "http" {
		return "", "", fmt.Errorf("-fast speaks plain HTTP/1.1; target scheme %q needs net/http (drop -fast)", u.Scheme)
	}
	host = u.Host
	addr = host
	if u.Port() == "" {
		addr += ":80"
	}
	return addr, host, nil
}

func newFastClient(addr, host string, timeout time.Duration) *fastClient {
	return &fastClient{addr: addr, host: host, timeout: timeout}
}

func (c *fastClient) close() {
	if c == nil || c.conn == nil {
		return
	}
	c.conn.Close()
	c.conn = nil
	c.br = nil
}

// get issues one GET and returns the response status, retrying once on
// a fresh connection: a keep-alive peer may close an idle connection
// between requests, which surfaces as an error on the stale socket, not
// a server failure.
func (c *fastClient) get(path string) (int, error) {
	reused := c.conn != nil
	status, err := c.roundTrip(path)
	if err != nil && reused {
		c.close()
		status, err = c.roundTrip(path)
	}
	if err != nil {
		c.close()
		return 0, err
	}
	return status, nil
}

func (c *fastClient) roundTrip(path string) (int, error) {
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
		if err != nil {
			return 0, err
		}
		c.conn = conn
		c.br = bufio.NewReaderSize(conn, 64<<10)
	}
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	c.req = append(c.req[:0], "GET "...)
	c.req = append(c.req, path...)
	c.req = append(c.req, " HTTP/1.1\r\nHost: "...)
	c.req = append(c.req, c.host...)
	c.req = append(c.req, "\r\n\r\n"...)
	if _, err := c.conn.Write(c.req); err != nil {
		return 0, err
	}
	return c.readResponse()
}

// readLine reads one CRLF-terminated line, returning a slice into the
// reader's buffer (valid only until the next read).
func (c *fastClient) readLine() ([]byte, error) {
	b, err := c.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	b = b[:len(b)-1]
	if len(b) > 0 && b[len(b)-1] == '\r' {
		b = b[:len(b)-1]
	}
	return b, nil
}

func (c *fastClient) readResponse() (int, error) {
	line, err := c.readLine()
	if err != nil {
		return 0, err
	}
	// "HTTP/1.1 200 OK"
	if len(line) < 12 || !bytes.HasPrefix(line, []byte("HTTP/1.")) {
		return 0, fmt.Errorf("bad status line %q", line)
	}
	status := 0
	for _, d := range line[9:12] {
		if d < '0' || d > '9' {
			return 0, fmt.Errorf("bad status line %q", line)
		}
		status = status*10 + int(d-'0')
	}
	contentLength := -1
	chunked := false
	closeAfter := false
	for {
		line, err := c.readLine()
		if err != nil {
			return 0, err
		}
		if len(line) == 0 {
			break
		}
		k, v, ok := bytes.Cut(line, []byte(":"))
		if !ok {
			continue
		}
		v = bytes.TrimSpace(v)
		switch {
		case bytes.EqualFold(k, []byte("Content-Length")):
			n := 0
			for _, d := range v {
				if d < '0' || d > '9' {
					return 0, fmt.Errorf("bad Content-Length %q", v)
				}
				n = n*10 + int(d-'0')
			}
			contentLength = n
		case bytes.EqualFold(k, []byte("Transfer-Encoding")):
			chunked = bytes.EqualFold(v, []byte("chunked"))
		case bytes.EqualFold(k, []byte("Connection")):
			closeAfter = bytes.EqualFold(v, []byte("close"))
		}
	}
	switch {
	case status == 204 || status == 304:
		// No body by definition.
	case chunked:
		if err := c.discardChunked(); err != nil {
			return 0, err
		}
	case contentLength >= 0:
		if _, err := c.br.Discard(contentLength); err != nil {
			return 0, err
		}
	default:
		// Unframed body: it runs to connection close.
		io.Copy(io.Discard, c.br)
		closeAfter = true
	}
	if closeAfter {
		c.close()
	}
	return status, nil
}

// discardChunked consumes a chunked body: hex size lines, each chunk
// plus its trailing CRLF, then any trailer lines after the zero chunk.
func (c *fastClient) discardChunked() error {
	for {
		line, err := c.readLine()
		if err != nil {
			return err
		}
		if i := bytes.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = bytes.TrimSpace(line)
		size, err := parseHex(line)
		if err != nil {
			return err
		}
		if size == 0 {
			for {
				line, err := c.readLine()
				if err != nil {
					return err
				}
				if len(line) == 0 {
					return nil
				}
			}
		}
		if _, err := c.br.Discard(int(size) + 2); err != nil {
			return err
		}
	}
}

func parseHex(b []byte) (int64, error) {
	if len(b) == 0 || len(b) > 15 {
		return 0, fmt.Errorf("bad chunk size %q", b)
	}
	var n int64
	for _, d := range b {
		switch {
		case d >= '0' && d <= '9':
			n = n<<4 | int64(d-'0')
		case d >= 'a' && d <= 'f':
			n = n<<4 | int64(d-'a'+10)
		case d >= 'A' && d <= 'F':
			n = n<<4 | int64(d-'A'+10)
		default:
			return 0, fmt.Errorf("bad chunk size %q", b)
		}
	}
	return n, nil
}
