package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"rwskit/internal/dataset"
	"rwskit/internal/serve"
)

// --- histogram ---

// TestHistQuantileMatchesExact records a known sample and holds every
// quantile to within the histogram's design error (2^-6 of the value)
// against the exact sorted answer.
func TestHistQuantileMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h latHist
	var exact []time.Duration
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~ns to ~10s, the range real latencies span.
		d := time.Duration(rng.ExpFloat64() * float64(time.Millisecond))
		h.record(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		got := h.quantile(q)
		want := percentile(exact, q)
		if q == 1 {
			want = exact[len(exact)-1]
		}
		// The bucket holds values within 1/64 of each other; allow one
		// rank of slack on top for the differing rank conventions.
		tol := time.Duration(float64(want)/32) + 2*time.Microsecond
		if got < want-tol || got > want+tol {
			t.Errorf("quantile(%g) = %v, exact %v (tol %v)", q, got, want, tol)
		}
	}
	if h.quantile(1) != h.max {
		t.Errorf("p100 = %v, want the observed max %v", h.quantile(1), h.max)
	}
}

// TestHistIndexBounds: every value lands in a bucket whose upper edge
// is within 2^-6 relative error above it, and indexes are monotonic.
func TestHistIndexBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	values := []int64{0, 1, 63, 64, 127, 128, 129, 1 << 20, 1<<62 + 12345}
	for i := 0; i < 5000; i++ {
		values = append(values, rng.Int63())
	}
	for _, v := range values {
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		edge := histValue(i)
		if edge < v {
			t.Errorf("histValue(histIndex(%d)) = %d < value", v, edge)
		}
		if v >= 128 && float64(edge) > float64(v)*(1+1.0/32) {
			t.Errorf("bucket edge %d overstates %d by more than the design error", edge, v)
		}
	}
	prev := -1
	for v := int64(0); v < 4096; v++ {
		if i := histIndex(v); i < prev {
			t.Fatalf("histIndex not monotonic at %d", v)
		} else {
			prev = i
		}
	}
}

func TestHistMerge(t *testing.T) {
	var a, b, both latHist
	for i := 1; i <= 100; i++ {
		d := time.Duration(i) * time.Millisecond
		both.record(d)
		if i%2 == 0 {
			a.record(d)
		} else {
			b.record(d)
		}
	}
	a.merge(&b)
	if a.total != both.total || a.max != both.max {
		t.Fatalf("merge: total %d max %v, want %d %v", a.total, a.max, both.total, both.max)
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.quantile(q) != both.quantile(q) {
			t.Errorf("quantile(%g) differs after merge: %v vs %v", q, a.quantile(q), both.quantile(q))
		}
	}
}

// --- knee ---

func TestKneeOf(t *testing.T) {
	stage := func(offered, achieved float64, errs uint64) Report {
		return Report{OfferedRate: offered, ReqPerSec: achieved, Requests: 1000, Errors: errs}
	}
	rate, reason := kneeOf([]Report{stage(100, 100, 0), stage(200, 199, 0), stage(400, 310, 0)})
	if rate != 200 || !strings.Contains(reason, "achieved only 310") {
		t.Errorf("knee = %g (%s), want 200", rate, reason)
	}
	// Errors unsustain a stage even at full throughput.
	rate, reason = kneeOf([]Report{stage(100, 100, 0), stage(200, 200, 7)})
	if rate != 100 || !strings.Contains(reason, "7 of 1000") {
		t.Errorf("knee = %g (%s), want 100", rate, reason)
	}
	// All sustained: knee is the top rate, reason says so.
	rate, reason = kneeOf([]Report{stage(100, 100, 0), stage(200, 200, 0)})
	if rate != 200 || !strings.Contains(reason, "beyond the sweep") {
		t.Errorf("knee = %g (%s), want 200", rate, reason)
	}
	// Nothing sustained.
	if rate, _ = kneeOf([]Report{stage(100, 40, 0)}); rate != 0 {
		t.Errorf("knee = %g, want 0", rate)
	}
}

// --- flags ---

func TestParseFlagsOpenLoop(t *testing.T) {
	cfg, err := parseFlags([]string{"-target", "http://x", "-rate", "5000", "-arrival", "fixed", "-fast"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.rate != 5000 || cfg.arrival != "fixed" || !cfg.fast {
		t.Errorf("parseFlags = %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-target", "http://x", "-sweep", "100, 200,400"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.sweepRates) != 3 || cfg.sweepRates[2] != 400 {
		t.Errorf("sweepRates = %v", cfg.sweepRates)
	}
	for _, bad := range [][]string{
		{"-target", "http://x", "-arrival", "uniform"},
		{"-target", "http://x", "-rate", "-1"},
		{"-target", "http://x", "-rate", "100", "-sweep", "200"},
		{"-target", "http://x", "-sweep", "100,bogus"},
		{"-target", "http://x", "-sweep", "400,200"}, // not ascending
		{"-target", "http://x", "-sweep", "0"},
		{"-target", "http://x", "-sweep", ","},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("parseFlags(%v) should fail", bad)
		}
	}
}

// --- fast client ---

// fastTestServer exercises every framing the client must parse: a
// small Content-Length body, a body large enough that net/http switches
// to chunked encoding, an error status, and a Connection: close reply.
func fastTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/small", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	})
	mux.HandleFunc("/big", func(w http.ResponseWriter, r *http.Request) {
		big := bytes.Repeat([]byte("x"), 32<<10)
		w.Write(big) // > the 2KB sniff buffer: net/http streams it chunked
	})
	mux.HandleFunc("/missing", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})
	mux.HandleFunc("/goaway", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Connection", "close")
		w.Write([]byte("bye"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestFastClient(t *testing.T) {
	ts := fastTestServer(t)
	addr, host, err := fastTarget(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	c := newFastClient(addr, host, 2*time.Second)
	defer c.close()
	// Interleave framings on one connection: the client must leave the
	// stream positioned at the next response every time.
	for i := 0; i < 3; i++ {
		for _, q := range []struct {
			path   string
			status int
		}{
			{"/small", 200}, {"/big", 200}, {"/missing", 404}, {"/small", 200},
		} {
			status, err := c.get(q.path)
			if err != nil {
				t.Fatalf("round %d %s: %v", i, q.path, err)
			}
			if status != q.status {
				t.Fatalf("round %d %s: status %d, want %d", i, q.path, status, q.status)
			}
		}
	}
	// A Connection: close response drops the socket; the next get must
	// transparently redial.
	if status, err := c.get("/goaway"); err != nil || status != 200 {
		t.Fatalf("/goaway: %d, %v", status, err)
	}
	if c.conn != nil {
		t.Fatal("connection not dropped after Connection: close")
	}
	if status, err := c.get("/small"); err != nil || status != 200 {
		t.Fatalf("redial after close: %d, %v", status, err)
	}

	// https targets need net/http.
	if _, _, err := fastTarget("https://example.com"); err == nil {
		t.Error("fastTarget should reject https")
	}
}

func TestParseHex(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true}, {"a", 10, true}, {"FF", 255, true}, {"1f4", 500, true},
		{"", 0, false}, {"g1", 0, false}, {"12345678901234567", 0, false},
	} {
		got, err := parseHex([]byte(tc.in))
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("parseHex(%q) = %d, %v", tc.in, got, err)
		}
	}
}

// --- open loop against a live server ---

func liveTarget(t *testing.T) *httptest.Server {
	t.Helper()
	list, err := dataset.List()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(list))
	t.Cleanup(ts.Close)
	return ts
}

// TestOpenLoopRun drives -rate against a live server: the report must
// carry the open-loop fields, hit roughly the offered request count,
// and keep its percentiles ordered.
func TestOpenLoopRun(t *testing.T) {
	ts := liveTarget(t)
	for _, arrival := range []string{"poisson", "fixed"} {
		var out bytes.Buffer
		err := run(context.Background(), []string{
			"-target", ts.URL, "-workers", "2", "-duration", "400ms",
			"-rate", "500", "-arrival", arrival, "-json",
		}, &out)
		if err != nil {
			t.Fatalf("%s: run: %v (output %q)", arrival, err, out.String())
		}
		var rep Report
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Mode != "open" || rep.Arrival != arrival || rep.OfferedRate != 500 {
			t.Errorf("%s: open-loop fields missing: %+v", arrival, rep)
		}
		if rep.Errors != 0 {
			t.Errorf("%s: %d errors against a healthy server", arrival, rep.Errors)
		}
		// 500 req/s over 400ms is ~200 requests. The schedule, not worker
		// count, sets the pace — accept a generous band for CI jitter.
		if rep.Requests < 100 || rep.Requests > 320 {
			t.Errorf("%s: %d requests at 500 req/s over 400ms, want ~200", arrival, rep.Requests)
		}
		if rep.P50Micros > rep.P90Micros || rep.P90Micros > rep.P99Micros ||
			rep.P99Micros > rep.P999Micros || rep.P999Micros > rep.MaxMicros {
			t.Errorf("%s: percentiles out of order: %+v", arrival, rep)
		}
	}
}

// TestOpenLoopFast is the same drive through the built-in HTTP/1.1
// client, covering the chunked paths the big batch responses take.
func TestOpenLoopFast(t *testing.T) {
	ts := liveTarget(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL, "-workers", "2", "-duration", "300ms",
		"-rate", "400", "-fast", "-json", "-batch", "100",
		"-mix", "sameset=2,set=2,partition=1,batch=1",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v (output %q)", err, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Errorf("fast open loop: %+v", rep)
	}
}

// TestClosedLoopFast: -fast works in the default closed loop too.
func TestClosedLoopFast(t *testing.T) {
	ts := liveTarget(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL, "-workers", "2", "-duration", "200ms", "-fast", "-json",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v (output %q)", err, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" || rep.Requests == 0 || rep.Errors != 0 {
		t.Errorf("fast closed loop: %+v", rep)
	}
}

// TestSweepRun steps two offered rates and checks the sweep report
// shape: both stages present, a knee, and a single JSON document.
func TestSweepRun(t *testing.T) {
	ts := liveTarget(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL, "-workers", "2", "-duration", "250ms",
		"-sweep", "200,400", "-json",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v (output %q)", err, out.String())
	}
	var swp SweepReport
	if err := json.Unmarshal(out.Bytes(), &swp); err != nil {
		t.Fatalf("sweep report is not one JSON document: %v\n%s", err, out.String())
	}
	if len(swp.Stages) != 2 || swp.Stages[0].OfferedRate != 200 || swp.Stages[1].OfferedRate != 400 {
		t.Fatalf("stages = %+v", swp.Stages)
	}
	if swp.KneeReason == "" || swp.MaxThroughput <= 0 {
		t.Errorf("sweep summary incomplete: %+v", swp)
	}
	// Text mode renders the curve and the knee line.
	out.Reset()
	err = run(context.Background(), []string{
		"-target", ts.URL, "-workers", "2", "-duration", "150ms", "-sweep", "100,200",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OFFERED", "ACHIEVED", "knee", "max rate"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("sweep text missing %q:\n%s", want, out.String())
		}
	}
}
