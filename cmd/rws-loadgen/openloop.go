package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Open-loop mode: requests are launched on a rate-driven arrival
// schedule that does not wait for completions, so slow responses cannot
// throttle the offered load the way a closed loop silently does
// (coordinated omission). Latency is measured from each request's
// *intended* send time — if the server (or a backed-up worker) delays a
// request past its slot, the queueing delay counts against it. The
// schedule is split across workers wrk2-style: each worker owns every
// Nth arrival, with interval workers/rate, either fixed (staggered
// phases, deterministic spacing) or Poisson (exponential gaps, the
// memoryless arrivals real traffic approximates).

// openResult is one open-loop worker's tally.
type openResult struct {
	hist     latHist
	requests [numScenarios]uint64
	errors   [numScenarios]uint64
	tgt      []targetTally // indexed like cfg.targets
}

// runOpen generates load at the offered rate for cfg.duration and
// reports achieved throughput plus latency-from-intended-send.
func (g *generator) runOpen(ctx context.Context, rate float64) (Report, error) {
	if rate <= 0 {
		return Report{}, errors.New("open-loop rate must be > 0")
	}
	ctx, cancel := context.WithTimeout(ctx, g.cfg.duration)
	defer cancel()
	interval := time.Duration(float64(g.cfg.workers) / rate * float64(time.Second))
	if interval <= 0 {
		interval = 1
	}
	results := make([]openResult, g.cfg.workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g.cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g.openWorker(ctx, w, interval, start, &results[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		Target:        g.cfg.target,
		Workers:       g.cfg.workers,
		Mix:           g.cfg.mix,
		Seed:          g.cfg.seed,
		Mode:          "open",
		Arrival:       g.cfg.arrival,
		OfferedRate:   rate,
		ElapsedMillis: elapsed.Milliseconds(),
	}
	var hist latHist
	var scen [numScenarios]ScenarioStats
	for id := range scen {
		scen[id].Scenario = scenarioNames[id]
	}
	for i := range results {
		res := &results[i]
		hist.merge(&res.hist)
		for id := range scen {
			scen[id].Requests += res.requests[id]
			scen[id].Errors += res.errors[id]
			rep.Requests += res.requests[id]
			rep.Errors += res.errors[id]
		}
	}
	for id := range scen {
		if g.cfg.weights[id] > 0 {
			rep.Scenarios = append(rep.Scenarios, scen[id])
		}
	}
	perTarget := make([][]targetTally, len(results))
	for i := range results {
		perTarget[i] = results[i].tgt
	}
	rep.Targets = g.targetStats(perTarget, elapsed)
	if rep.Requests == 0 {
		return rep, errors.New("no requests completed (is the target up?)")
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ReqPerSec = float64(rep.Requests) / secs
	}
	rep.P50Micros = hist.quantile(0.50).Microseconds()
	rep.P90Micros = hist.quantile(0.90).Microseconds()
	rep.P95Micros = hist.quantile(0.95).Microseconds()
	rep.P99Micros = hist.quantile(0.99).Microseconds()
	rep.P999Micros = hist.quantile(0.999).Microseconds()
	rep.MaxMicros = hist.max.Microseconds()
	return rep, nil
}

// openWorker issues worker id's share of the arrival schedule. The
// worker never skips a slot: if it falls behind, it fires the overdue
// arrivals back-to-back and their latency includes the time spent
// waiting for their turn.
func (g *generator) openWorker(ctx context.Context, id int, interval time.Duration, start time.Time, res *openResult) {
	rng := newWorkerRNG(g.cfg.seed, id)
	fcs := g.newWorkerClients()
	defer closeClients(fcs)
	res.tgt = make([]targetTally, len(g.cfg.targets))
	poisson := g.cfg.arrival == "poisson"
	// First arrival: fixed mode staggers worker phases so the aggregate
	// stream is evenly spaced at 1/rate; Poisson draws its first gap.
	var next time.Time
	if poisson {
		next = start.Add(time.Duration(rng.ExpFloat64() * float64(interval)))
	} else {
		next = start.Add(interval * time.Duration(id) / time.Duration(g.cfg.workers))
	}
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for n := 0; ; n++ {
		if ctx.Err() != nil {
			return
		}
		if wait := time.Until(next); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
		}
		sc := g.pick[rng.Intn(len(g.pick))]
		ti := g.targetPick[(id+n)%len(g.targetPick)]
		intended := next
		ok := g.doWith(ctx, fcs, ti, sc, rng)
		if ctx.Err() != nil && !ok {
			return // the deadline killed this request mid-flight; don't count it
		}
		d := time.Since(intended)
		res.requests[sc]++
		res.hist.record(d)
		t := &res.tgt[ti]
		t.requests++
		t.hist.record(d)
		if !ok {
			res.errors[sc]++
			t.errors++
		}
		if poisson {
			next = next.Add(time.Duration(rng.ExpFloat64() * float64(interval)))
		} else {
			next = next.Add(interval)
		}
	}
}

// SweepReport is the latency-under-load curve from a -sweep run, plus
// the knee: the highest offered rate the server actually sustained.
type SweepReport struct {
	Target        string   `json:"target"`
	Workers       int      `json:"workers"`
	Mix           string   `json:"mix"`
	Seed          int64    `json:"seed"`
	Arrival       string   `json:"arrival"`
	Stages        []Report `json:"stages"`
	KneeRate      float64  `json:"knee_rate"`
	KneeReason    string   `json:"knee_reason"`
	MaxThroughput float64  `json:"max_throughput_req_per_sec"`
}

// sustained reports whether a stage kept up with its offered load:
// achieved within 1% of offered and no errors.
func sustained(rep Report) bool {
	return rep.Errors == 0 && rep.ReqPerSec >= 0.99*rep.OfferedRate
}

// runSweep steps the offered rate through cfg.sweepRates, one
// cfg.duration stage each, and locates the knee. Stages past saturation
// are expected to fall short (that is the point of the sweep), so
// per-stage errors mark the stage unsustained instead of failing the
// run.
func (g *generator) runSweep(ctx context.Context, progress io.Writer) (SweepReport, error) {
	swp := SweepReport{
		Target:  g.cfg.target,
		Workers: g.cfg.workers,
		Mix:     g.cfg.mix,
		Seed:    g.cfg.seed,
		Arrival: g.cfg.arrival,
	}
	for _, rate := range g.cfg.sweepRates {
		if ctx.Err() != nil {
			break // interrupted: report the stages that finished
		}
		rep, err := g.runOpen(ctx, rate)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			return swp, fmt.Errorf("sweep stage at %g req/s: %w", rate, err)
		}
		swp.Stages = append(swp.Stages, rep)
		if progress != nil {
			fmt.Fprintf(progress, "sweep: offered %8.0f req/s -> achieved %8.0f req/s, p50=%dµs p99=%dµs errors=%d\n",
				rate, rep.ReqPerSec, rep.P50Micros, rep.P99Micros, rep.Errors)
		}
		if rep.ReqPerSec > swp.MaxThroughput {
			swp.MaxThroughput = rep.ReqPerSec
		}
	}
	if len(swp.Stages) == 0 {
		return swp, errors.New("sweep completed no stages")
	}
	swp.KneeRate, swp.KneeReason = kneeOf(swp.Stages)
	return swp, nil
}

// kneeOf scans up the curve for the last sustained stage. One
// unsustained stage ends the scan, so a fluke recovery at a higher rate
// (timeouts masking load) cannot move the knee past a failure.
func kneeOf(stages []Report) (rate float64, reason string) {
	for _, rep := range stages {
		if !sustained(rep) {
			if rep.Errors > 0 {
				return rate, fmt.Sprintf("offered %g req/s: %d of %d requests failed", rep.OfferedRate, rep.Errors, rep.Requests)
			}
			return rate, fmt.Sprintf("offered %g req/s achieved only %.0f req/s", rep.OfferedRate, rep.ReqPerSec)
		}
		rate = rep.OfferedRate
	}
	return rate, "every offered rate was sustained; the knee lies beyond the sweep's top rate"
}

func (s SweepReport) write(w io.Writer) {
	fmt.Fprintf(w, "rws-loadgen sweep: target=%s workers=%d mix=%s arrival=%s\n", s.Target, s.Workers, s.Mix, s.Arrival)
	fmt.Fprintf(w, "  %-12s %-12s %-9s %-9s %-9s %-9s %s\n", "OFFERED", "ACHIEVED", "P50µS", "P90µS", "P99µS", "P99.9µS", "ERRORS")
	for _, rep := range s.Stages {
		fmt.Fprintf(w, "  %-12.0f %-12.1f %-9d %-9d %-9d %-9d %d\n",
			rep.OfferedRate, rep.ReqPerSec, rep.P50Micros, rep.P90Micros, rep.P99Micros, rep.P999Micros, rep.Errors)
	}
	fmt.Fprintf(w, "  knee       %.0f req/s (%s)\n", s.KneeRate, s.KneeReason)
	fmt.Fprintf(w, "  max rate   %.1f req/s achieved\n", s.MaxThroughput)
}
