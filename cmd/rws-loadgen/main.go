// Command rws-loadgen is a keep-alive load generator for rws-serve
// with two modes:
//
//   - Closed loop (default): N workers issue queries back-to-back over
//     pooled connections, so the measured numbers reflect the server's
//     query plane rather than TCP dial latency (PR 2's loopback
//     benchmarks were dial-dominated; this is the ROADMAP's fix).
//   - Open loop (-rate or -sweep): requests launch on a rate-driven
//     arrival schedule (Poisson by default, -arrival fixed for even
//     spacing) that does not wait for completions, and latency is
//     measured from each request's intended send time — the wrk2-style
//     correction for coordinated omission. -sweep steps the offered
//     rate through a list of stages and reports the latency-under-load
//     curve plus the knee (the highest sustained rate).
//
// -fast swaps net/http for a minimal built-in HTTP/1.1 client (plain
// http targets only), removing ~30µs/request of client-side overhead so
// a single small load box can saturate the prebaked serving plane.
//
// -targets runs the same mix against several endpoints at once — a
// leader plus its /v1/list followers — spreading requests round-robin
// across the URLs (weighted by an optional =N suffix per URL) and
// reporting per-target req/s and latency alongside the aggregate. The
// spread is deterministic: each worker walks the weight-expanded target
// ring from its own phase, so a seed pins the full (scenario, target)
// sequence. Composes with -fast (one persistent connection per worker
// per target) and with -rate/-sweep.
//
// Usage:
//
//	rws-loadgen -target http://host:port [-workers 8] [-duration 10s]
//	            [-mix sameset=4,set=3,partition=2,batch=1] [-seed 1]
//	            [-list file-or-url | -amplify N [-amplify-seed S]]
//	            [-rate R | -sweep r1,r2,...] [-arrival poisson|fixed]
//	            [-fast] [-batch 8] [-json]
//	rws-loadgen -targets http://leader:8080=2,http://f1:8081,http://f2:8082
//	            [same flags]
//
// Scenarios:
//
//	sameset    GET  /v1/sameset?a=&b=
//	set        GET  /v1/set?site=
//	partition  GET  /v1/partition?top=&embedded=
//	batch      GET  /v1/sameset?pairs= (-batch pairs per request)
//	asof       GET  /v1/sameset?a=&b=&as_of=   (time-travel reads)
//	diff       GET  /v1/diff?from=&to=         (version-pair diffs)
//	churn      GET  /v1/churn?from=&to=        (version-chain churn rollups)
//
// asof, diff, and churn (weight 0 unless named in -mix) exercise the
// version store: the generator fetches /v1/versions from the target once
// at startup and draws as_of instants and from/to hash pairs from the
// retained versions (churn draws them in as-of order), so they pair
// naturally with rws-serve -timeline.
//
// Hosts are drawn deterministically from the list (-list, default the
// embedded snapshot) with a seeded PRNG per worker, so two runs with the
// same flags issue the same request sequence. Half of each pair scenario
// picks two members of one set (hitting the related/precomputed path),
// half picks two hosts at random. The report gives req/s and
// p50/p95/p99/max latency over every completed request.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"rwskit/internal/amplify"
	"rwskit/internal/core"
	"rwskit/internal/dataset"
	"rwskit/internal/source"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rws-loadgen:", err)
		os.Exit(1)
	}
}

// scenarioID indexes the request mix.
type scenarioID int

const (
	scSameSet scenarioID = iota
	scSet
	scPartition
	scBatch
	scAsOf
	scDiff
	scChurn
	numScenarios
)

var scenarioNames = [numScenarios]string{
	scSameSet:   "sameset",
	scSet:       "set",
	scPartition: "partition",
	scBatch:     "batch",
	scAsOf:      "asof",
	scDiff:      "diff",
	scChurn:     "churn",
}

// targetSpec is one endpoint of a (possibly multi-target) run.
type targetSpec struct {
	url    string
	weight int
	// addr and host are the -fast dial address and Host header,
	// resolved once in newGenerator.
	addr, host string
}

type config struct {
	target      string // display form: the URL, or the joined -targets list
	targets     []targetSpec
	workers     int
	duration    time.Duration
	weights     [numScenarios]int
	mix         string
	seed        int64
	list        string
	amplify     int
	amplifySeed int64
	batch       int
	timeout     time.Duration
	jsonOut     bool
	rate        float64
	arrival     string
	sweepRates  []float64
	fast        bool
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("rws-loadgen", flag.ContinueOnError)
	target := fs.String("target", "", "base URL of the rws-serve instance")
	targets := fs.String("targets", "", "comma-separated base URLs url[=weight],... for a weighted round-robin multi-endpoint run (excludes -target)")
	workers := fs.Int("workers", 8, "concurrent closed-loop workers")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	mix := fs.String("mix", "sameset=4,set=3,partition=2,batch=1", "scenario weights")
	seed := fs.Int64("seed", 1, "PRNG seed for deterministic host selection")
	list := fs.String("list", "", "draw hosts from this list file or URL (default: embedded snapshot)")
	amp := fs.Int("amplify", 0, "draw hosts from a synthetic amplified list of N sets (pair with rws-serve -amplify)")
	ampSeed := fs.Int64("amplify-seed", 1, "seed for -amplify (must match the server's)")
	batch := fs.Int("batch", 8, "pairs per batch request")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	rate := fs.Float64("rate", 0, "open-loop offered rate in req/s across all workers (0 = closed loop)")
	arrival := fs.String("arrival", "poisson", "open-loop arrival process: poisson or fixed")
	sweep := fs.String("sweep", "", "comma-separated offered rates to sweep (req/s), one -duration stage each; implies open loop")
	fast := fs.Bool("fast", false, "use the minimal built-in HTTP/1.1 client (plain http targets only)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() != 0 {
		return config{}, errors.New("usage: rws-loadgen -target URL [flags]")
	}
	cfg := config{
		workers:  *workers,
		duration: *duration, mix: *mix, seed: *seed, list: *list,
		amplify: *amp, amplifySeed: *ampSeed,
		batch: *batch, timeout: *timeout, jsonOut: *jsonOut,
		rate: *rate, arrival: *arrival, fast: *fast,
	}
	var err error
	if cfg.targets, err = parseTargets(*target, *targets); err != nil {
		return config{}, err
	}
	urls := make([]string, len(cfg.targets))
	for i, t := range cfg.targets {
		urls[i] = t.url
	}
	cfg.target = strings.Join(urls, ",")
	if cfg.workers < 1 {
		return config{}, errors.New("-workers must be >= 1")
	}
	if cfg.duration <= 0 {
		return config{}, errors.New("-duration must be > 0")
	}
	if cfg.batch < 1 || cfg.batch > 500 {
		return config{}, errors.New("-batch must be in [1, 500]")
	}
	if cfg.amplify < 0 {
		return config{}, errors.New("-amplify must be >= 0")
	}
	if cfg.amplify > 0 && cfg.list != "" {
		return config{}, errors.New("-amplify excludes -list")
	}
	if cfg.arrival != "poisson" && cfg.arrival != "fixed" {
		return config{}, errors.New("-arrival must be poisson or fixed")
	}
	if cfg.rate < 0 {
		return config{}, errors.New("-rate must be >= 0")
	}
	if *sweep != "" {
		if cfg.rate > 0 {
			return config{}, errors.New("-sweep excludes -rate (the sweep sets its own rates)")
		}
		var err error
		if cfg.sweepRates, err = parseSweep(*sweep); err != nil {
			return config{}, err
		}
	}
	if cfg.weights, err = parseMix(*mix); err != nil {
		return config{}, err
	}
	return cfg, nil
}

// parseTargets resolves -target/-targets (exactly one must be given)
// into the endpoint list. Each -targets entry is url[=weight]; weights
// default to 1 and set the entry's share of the round-robin ring.
func parseTargets(single, multi string) ([]targetSpec, error) {
	if single != "" && multi != "" {
		return nil, errors.New("-target and -targets are mutually exclusive")
	}
	if single == "" && multi == "" {
		return nil, errors.New("-target or -targets is required")
	}
	if single != "" {
		u := strings.TrimSuffix(single, "/")
		if _, err := url.ParseRequestURI(u); err != nil {
			return nil, fmt.Errorf("-target: %v", err)
		}
		return []targetSpec{{url: u, weight: 1}}, nil
	}
	var specs []targetSpec
	for _, part := range strings.Split(multi, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec := targetSpec{url: part, weight: 1}
		if u, w, ok := strings.Cut(part, "="); ok {
			n, err := strconv.Atoi(strings.TrimSpace(w))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("-targets: bad weight in %q (want url=positive-int)", part)
			}
			spec.url, spec.weight = u, n
		}
		spec.url = strings.TrimSuffix(strings.TrimSpace(spec.url), "/")
		if _, err := url.ParseRequestURI(spec.url); err != nil {
			return nil, fmt.Errorf("target %q: %v", spec.url, err)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, errors.New("-targets: no URLs given")
	}
	return specs, nil
}

// parseSweep parses "-sweep 5000,10000,20000" into ascending offered
// rates. Ascending order is required: the knee scan walks up the curve.
func parseSweep(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("-sweep: bad rate %q (want a positive req/s number)", part)
		}
		if len(rates) > 0 && r <= rates[len(rates)-1] {
			return nil, fmt.Errorf("-sweep: rates must be strictly ascending (%g after %g)", r, rates[len(rates)-1])
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, errors.New("-sweep: no rates given")
	}
	return rates, nil
}

// parseMix parses "sameset=4,set=3,partition=2,batch=1". Omitted
// scenarios get weight 0; at least one weight must be positive.
func parseMix(s string) ([numScenarios]int, error) {
	var w [numScenarios]int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return w, fmt.Errorf("-mix: want name=weight, got %q", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 0 {
			return w, fmt.Errorf("-mix: bad weight in %q", part)
		}
		found := false
		for id, sn := range scenarioNames {
			if sn == strings.TrimSpace(name) {
				w[id] = n
				found = true
				break
			}
		}
		if !found {
			return w, fmt.Errorf("-mix: unknown scenario %q (want sameset, set, partition, batch, asof, diff, churn)", name)
		}
	}
	// Validate the final weights, not a running total: a duplicate key
	// ("sameset=4,sameset=0") can zero out what an earlier entry set.
	total := 0
	for _, n := range w {
		total += n
	}
	if total == 0 {
		return w, errors.New("-mix: at least one scenario needs a positive weight")
	}
	return w, nil
}

// ScenarioStats is one scenario's share of a report.
type ScenarioStats struct {
	Scenario string `json:"scenario"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// TargetStats is one endpoint's share of a multi-target report: its
// achieved throughput and latency alongside the run-wide aggregate.
type TargetStats struct {
	Target    string  `json:"target"`
	Weight    int     `json:"weight"`
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50Micros int64   `json:"p50_micros"`
	P99Micros int64   `json:"p99_micros"`
}

// Report is the load-generation result. Mode "closed" measures
// per-request service latency; mode "open" measures latency from each
// request's intended send time at the offered rate.
type Report struct {
	Target        string          `json:"target"`
	Workers       int             `json:"workers"`
	Mix           string          `json:"mix"`
	Seed          int64           `json:"seed"`
	Mode          string          `json:"mode"`
	Arrival       string          `json:"arrival,omitempty"`
	OfferedRate   float64         `json:"offered_rate,omitempty"`
	ElapsedMillis int64           `json:"elapsed_millis"`
	Requests      uint64          `json:"requests"`
	Errors        uint64          `json:"errors"`
	ReqPerSec     float64         `json:"req_per_sec"`
	P50Micros     int64           `json:"p50_micros"`
	P90Micros     int64           `json:"p90_micros"`
	P95Micros     int64           `json:"p95_micros"`
	P99Micros     int64           `json:"p99_micros"`
	P999Micros    int64           `json:"p999_micros"`
	MaxMicros     int64           `json:"max_micros"`
	Scenarios     []ScenarioStats `json:"scenarios"`
	// Targets breaks the run down per endpoint; present only on
	// multi-target (-targets) runs.
	Targets []TargetStats `json:"targets,omitempty"`
}

func run(ctx context.Context, args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	list, err := loadHosts(ctx, cfg)
	if err != nil {
		return err
	}
	gen, err := newGenerator(cfg, list)
	if err != nil {
		return err
	}
	if err := gen.primeVersions(ctx); err != nil {
		return err
	}
	if len(cfg.sweepRates) > 0 {
		// Progress lines go to the report writer only in text mode, so
		// -json output stays a single parseable document.
		var progress io.Writer
		if !cfg.jsonOut {
			progress = out
		}
		swp, err := gen.runSweep(ctx, progress)
		if err != nil {
			return err
		}
		if cfg.jsonOut {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(swp)
		}
		swp.write(out)
		return nil
	}
	var rep Report
	if cfg.rate > 0 {
		rep, err = gen.runOpen(ctx, cfg.rate)
	} else {
		rep, err = gen.Run(ctx)
	}
	if err != nil {
		return err
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
	} else {
		rep.write(out)
	}
	if err != nil {
		return err
	}
	// A broken target must fail the run (and the CI smoke), not just
	// color a column: every error here is a non-2xx or a dead server.
	if rep.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, rep.Requests)
	}
	return nil
}

func (r Report) write(w io.Writer) {
	fmt.Fprintf(w, "rws-loadgen: target=%s workers=%d mix=%s seed=%d mode=%s\n", r.Target, r.Workers, r.Mix, r.Seed, r.Mode)
	if r.Mode == "open" {
		fmt.Fprintf(w, "  offered   %.0f req/s (%s arrivals)\n", r.OfferedRate, r.Arrival)
	}
	fmt.Fprintf(w, "  elapsed   %.2fs\n", float64(r.ElapsedMillis)/1000)
	fmt.Fprintf(w, "  requests  %d (%.1f req/s)\n", r.Requests, r.ReqPerSec)
	fmt.Fprintf(w, "  errors    %d\n", r.Errors)
	fmt.Fprintf(w, "  latency   p50=%dµs p90=%dµs p95=%dµs p99=%dµs p99.9=%dµs max=%dµs\n",
		r.P50Micros, r.P90Micros, r.P95Micros, r.P99Micros, r.P999Micros, r.MaxMicros)
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, "  %-9s %d requests, %d errors\n", s.Scenario, s.Requests, s.Errors)
	}
	for _, t := range r.Targets {
		fmt.Fprintf(w, "  target %s (weight %d): %d requests (%.1f req/s), %d errors, p50=%dµs p99=%dµs\n",
			t.Target, t.Weight, t.Requests, t.ReqPerSec, t.Errors, t.P50Micros, t.P99Micros)
	}
}

// loadHosts resolves the host universe: an amplified synthetic list
// (-amplify, matching a server booted with the same rws-serve -amplify
// parameters), the embedded snapshot, or any list a Source can fetch
// (file path or http(s) URL).
func loadHosts(ctx context.Context, cfg config) (*core.List, error) {
	if cfg.amplify > 0 {
		return amplify.Generate(amplify.Config{Sets: cfg.amplify, Seed: cfg.amplifySeed})
	}
	if cfg.list == "" {
		return dataset.List()
	}
	list, _, err := source.Open(cfg.list).Fetch(ctx)
	return list, err
}

// generator runs the closed-loop workers.
type generator struct {
	cfg    config
	hosts  []string   // every member host, sorted (deterministic)
	groups [][]string // per-set member hosts, for related-pair picks
	pick   []scenarioID

	// targetPick is the weight-expanded target ring: workers walk it
	// round-robin from their own phase, so the (scenario, target)
	// sequence is deterministic per seed and the long-run share of each
	// endpoint matches its weight.
	targetPick []int
	client     *http.Client

	// hashes and asOfs are the target's retained versions, fetched once
	// at startup when the mix includes a versioned scenario. Server
	// order (oldest first) keeps runs deterministic per seed.
	hashes []string
	asOfs  []string
}

// wantsVersions reports whether the mix includes a scenario that needs
// the target's version list.
func (g *generator) wantsVersions() bool {
	return g.cfg.weights[scAsOf] > 0 || g.cfg.weights[scDiff] > 0 || g.cfg.weights[scChurn] > 0
}

// primeVersions fetches the retained versions for the asof and diff
// scenarios from the first target (on a multi-target run the endpoints
// replicate the same store, so any one of them is authoritative). A mix
// without versioned scenarios skips the request entirely.
func (g *generator) primeVersions(ctx context.Context) error {
	if !g.wantsVersions() {
		return nil
	}
	base := g.cfg.targets[0].url
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/versions", nil)
	if err != nil {
		return err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return fmt.Errorf("fetching %s/v1/versions for the asof/diff scenarios: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching %s/v1/versions: %s (asof/diff need a version-store rws-serve)", base, resp.Status)
	}
	var body struct {
		Versions []struct {
			Hash string    `json:"hash"`
			AsOf time.Time `json:"as_of"`
		} `json:"versions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("decoding /v1/versions: %w", err)
	}
	if len(body.Versions) == 0 {
		return errors.New("target retains no versions; asof/diff/churn scenarios have nothing to query")
	}
	// Order by as-of time so the churn scenario can draw from/to pairs
	// the server's chain walk accepts (from must not be newer than to).
	sort.SliceStable(body.Versions, func(i, j int) bool {
		return body.Versions[i].AsOf.Before(body.Versions[j].AsOf)
	})
	for _, v := range body.Versions {
		g.hashes = append(g.hashes, v.Hash)
		g.asOfs = append(g.asOfs, v.AsOf.Format(time.RFC3339))
	}
	return nil
}

func newGenerator(cfg config, list *core.List) (*generator, error) {
	g := &generator{cfg: cfg}
	for _, set := range list.Sets() {
		sites := set.Sites()
		g.hosts = append(g.hosts, sites...)
		if len(sites) >= 2 {
			g.groups = append(g.groups, sites)
		}
	}
	if len(g.hosts) < 2 || len(g.groups) == 0 {
		return nil, errors.New("list too small to generate load from")
	}
	sort.Strings(g.hosts)
	// The weighted picker: an index slice sampled uniformly.
	for id, w := range cfg.weights {
		for i := 0; i < w; i++ {
			g.pick = append(g.pick, scenarioID(id))
		}
	}
	// The target ring, expanded the same way.
	for ti, t := range cfg.targets {
		for i := 0; i < t.weight; i++ {
			g.targetPick = append(g.targetPick, ti)
		}
	}
	// Keep-alive pooling sized to the worker count, so a closed loop
	// reuses one warm connection per worker instead of redialing.
	g.client = &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.workers * 2,
			MaxIdleConnsPerHost: cfg.workers * 2,
			IdleConnTimeout:     90 * time.Second,
			ForceAttemptHTTP2:   true,
		},
	}
	if cfg.fast {
		for ti := range g.cfg.targets {
			t := &g.cfg.targets[ti]
			var err error
			if t.addr, t.host, err = fastTarget(t.url); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// newWorkerClients returns worker-private fast clients, one per target,
// or nil when the run uses net/http.
func (g *generator) newWorkerClients() []*fastClient {
	if !g.cfg.fast {
		return nil
	}
	fcs := make([]*fastClient, len(g.cfg.targets))
	for ti, t := range g.cfg.targets {
		fcs[ti] = newFastClient(t.addr, t.host, g.cfg.timeout)
	}
	return fcs
}

func closeClients(fcs []*fastClient) {
	for _, fc := range fcs {
		fc.close()
	}
}

// targetTally is one worker's per-target tally. The latency histogram
// makes per-endpoint quantiles free to merge across workers.
type targetTally struct {
	requests uint64
	errors   uint64
	hist     latHist
}

// workerResult is one worker's tally.
type workerResult struct {
	latencies []time.Duration
	requests  [numScenarios]uint64
	errors    [numScenarios]uint64
	tgt       []targetTally // indexed like cfg.targets
}

// Run generates load for cfg.duration and aggregates the report.
func (g *generator) Run(ctx context.Context) (Report, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.duration)
	defer cancel()
	results := make([]workerResult, g.cfg.workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g.cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = g.worker(ctx, w)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		Target:        g.cfg.target,
		Workers:       g.cfg.workers,
		Mix:           g.cfg.mix,
		Seed:          g.cfg.seed,
		Mode:          "closed",
		ElapsedMillis: elapsed.Milliseconds(),
	}
	var all []time.Duration
	var scen [numScenarios]ScenarioStats
	for id := range scen {
		scen[id].Scenario = scenarioNames[id]
	}
	for _, res := range results {
		all = append(all, res.latencies...)
		for id := range scen {
			scen[id].Requests += res.requests[id]
			scen[id].Errors += res.errors[id]
			rep.Requests += res.requests[id]
			rep.Errors += res.errors[id]
		}
	}
	for id := range scen {
		if g.cfg.weights[id] > 0 {
			rep.Scenarios = append(rep.Scenarios, scen[id])
		}
	}
	perTarget := make([][]targetTally, len(results))
	for i := range results {
		perTarget[i] = results[i].tgt
	}
	rep.Targets = g.targetStats(perTarget, elapsed)
	if rep.Requests == 0 {
		return rep, errors.New("no requests completed (is the target up?)")
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ReqPerSec = float64(rep.Requests) / secs
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50Micros = percentile(all, 0.50).Microseconds()
	rep.P90Micros = percentile(all, 0.90).Microseconds()
	rep.P95Micros = percentile(all, 0.95).Microseconds()
	rep.P99Micros = percentile(all, 0.99).Microseconds()
	rep.P999Micros = percentile(all, 0.999).Microseconds()
	rep.MaxMicros = all[len(all)-1].Microseconds()
	return rep, nil
}

// targetStats folds per-worker target tallies into the report's
// per-endpoint block; single-target runs omit it.
func (g *generator) targetStats(perWorker [][]targetTally, elapsed time.Duration) []TargetStats {
	if len(g.cfg.targets) < 2 {
		return nil
	}
	stats := make([]TargetStats, len(g.cfg.targets))
	hists := make([]latHist, len(g.cfg.targets))
	for ti, t := range g.cfg.targets {
		stats[ti].Target = t.url
		stats[ti].Weight = t.weight
	}
	for _, tgt := range perWorker {
		for ti := range tgt {
			stats[ti].Requests += tgt[ti].requests
			stats[ti].Errors += tgt[ti].errors
			hists[ti].merge(&tgt[ti].hist)
		}
	}
	secs := elapsed.Seconds()
	for ti := range stats {
		if secs > 0 {
			stats[ti].ReqPerSec = float64(stats[ti].Requests) / secs
		}
		stats[ti].P50Micros = hists[ti].quantile(0.50).Microseconds()
		stats[ti].P99Micros = hists[ti].quantile(0.99).Microseconds()
	}
	return stats
}

// percentile reads the p-quantile from an ascending-sorted slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// worker issues requests back-to-back until ctx expires. Each worker
// seeds its own PRNG from (seed, worker id), so the request sequence is
// deterministic per run regardless of scheduling; the target ring is
// walked by a counter (not the PRNG) from the worker's own phase, so
// adding targets never perturbs the scenario draw.
func (g *generator) worker(ctx context.Context, id int) workerResult {
	rng := newWorkerRNG(g.cfg.seed, id)
	fcs := g.newWorkerClients()
	defer closeClients(fcs)
	res := workerResult{tgt: make([]targetTally, len(g.cfg.targets))}
	for n := 0; ctx.Err() == nil; n++ {
		sc := g.pick[rng.Intn(len(g.pick))]
		ti := g.targetPick[(id+n)%len(g.targetPick)]
		start := time.Now()
		ok := g.doWith(ctx, fcs, ti, sc, rng)
		if ctx.Err() != nil && !ok {
			break // the deadline killed this request mid-flight; don't count it
		}
		d := time.Since(start)
		res.requests[sc]++
		res.latencies = append(res.latencies, d)
		t := &res.tgt[ti]
		t.requests++
		t.hist.record(d)
		if !ok {
			res.errors[sc]++
			t.errors++
		}
	}
	return res
}

// newWorkerRNG seeds worker id's PRNG from the run seed, so the request
// sequence is reproducible per (seed, worker) regardless of scheduling.
func newWorkerRNG(seed int64, id int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(id)<<32))
}

// pair picks two distinct hosts: half the time two members of one set
// (the related/precomputed path), half the time two uniform hosts
// (almost always cross-set).
func (g *generator) pair(rng *rand.Rand) (string, string) {
	if rng.Intn(2) == 0 {
		set := g.groups[rng.Intn(len(g.groups))]
		i := rng.Intn(len(set))
		j := rng.Intn(len(set) - 1)
		if j >= i {
			j++
		}
		return set[i], set[j]
	}
	i := rng.Intn(len(g.hosts))
	j := rng.Intn(len(g.hosts) - 1)
	if j >= i {
		j++
	}
	return g.hosts[i], g.hosts[j]
}

// buildPath renders one scenario draw as a request path and query.
func (g *generator) buildPath(sc scenarioID, rng *rand.Rand) string {
	switch sc {
	case scSameSet:
		a, b := g.pair(rng)
		return fmt.Sprintf("/v1/sameset?a=%s&b=%s", url.QueryEscape(a), url.QueryEscape(b))
	case scSet:
		return fmt.Sprintf("/v1/set?site=%s", url.QueryEscape(g.hosts[rng.Intn(len(g.hosts))]))
	case scPartition:
		top, emb := g.pair(rng)
		return fmt.Sprintf("/v1/partition?top=%s&embedded=%s", url.QueryEscape(top), url.QueryEscape(emb))
	case scBatch:
		var sb strings.Builder
		for i := 0; i < g.cfg.batch; i++ {
			if i > 0 {
				sb.WriteByte(';')
			}
			a, b := g.pair(rng)
			sb.WriteString(a)
			sb.WriteByte(',')
			sb.WriteString(b)
		}
		return fmt.Sprintf("/v1/sameset?pairs=%s", url.QueryEscape(sb.String()))
	case scAsOf:
		a, b := g.pair(rng)
		asOf := g.asOfs[rng.Intn(len(g.asOfs))]
		return fmt.Sprintf("/v1/sameset?a=%s&b=%s&as_of=%s",
			url.QueryEscape(a), url.QueryEscape(b), url.QueryEscape(asOf))
	case scDiff:
		from := g.hashes[rng.Intn(len(g.hashes))]
		to := g.hashes[rng.Intn(len(g.hashes))]
		return fmt.Sprintf("/v1/diff?from=%s&to=%s", from[:12], to[:12])
	case scChurn:
		// Draw an ordered (from, to) pair: the churn chain rejects a from
		// newer than to.
		i, j := rng.Intn(len(g.hashes)), rng.Intn(len(g.hashes))
		if i > j {
			i, j = j, i
		}
		return fmt.Sprintf("/v1/churn?from=%s&to=%s", g.hashes[i][:12], g.hashes[j][:12])
	}
	return "/"
}

// doWith issues one request against target ti over its fast client (or
// net/http when fcs is nil) and reports whether it completed with a 2xx.
func (g *generator) doWith(ctx context.Context, fcs []*fastClient, ti int, sc scenarioID, rng *rand.Rand) bool {
	path := g.buildPath(sc, rng)
	if fcs != nil {
		status, err := fcs[ti].get(path)
		return err == nil && status < 300
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.cfg.targets[ti].url+path, nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	// Drain so the connection returns to the keep-alive pool.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode < 300
}
