package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rwskit/internal/core"
	"rwskit/internal/dataset"
	"rwskit/internal/serve"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-target", "http://127.0.0.1:8080/", "-workers", "4", "-duration", "2s", "-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.target != "http://127.0.0.1:8080" || cfg.workers != 4 || cfg.duration != 2*time.Second || cfg.seed != 7 {
		t.Errorf("parseFlags = %+v", cfg)
	}
	for _, bad := range [][]string{
		{},                                    // missing target
		{"-target", "http://x", "positional"}, // positional arg
		{"-target", "http://x", "-workers", "0"},
		{"-target", "http://x", "-duration", "0s"},
		{"-target", "http://x", "-mix", "sameset=0"},
		{"-target", "http://x", "-mix", "nosuch=1"},
		{"-target", "http://x", "-mix", "sameset"},
		{"-target", "http://x", "-batch", "0"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("parseFlags(%v) should fail", bad)
		}
	}
}

func TestParseMixPartial(t *testing.T) {
	w, err := parseMix("sameset=2, batch=1")
	if err != nil {
		t.Fatal(err)
	}
	if w[scSameSet] != 2 || w[scBatch] != 1 || w[scSet] != 0 || w[scPartition] != 0 {
		t.Errorf("weights = %v", w)
	}
	// A duplicate key zeroing out the only positive weight must be
	// rejected, not panic the workers with an empty picker.
	if _, err := parseMix("sameset=4,sameset=0"); err == nil {
		t.Error("all-zero final weights should be rejected")
	}
	// Last duplicate wins when the result is still valid.
	w, err = parseMix("sameset=4,sameset=2")
	if err != nil || w[scSameSet] != 2 {
		t.Errorf("duplicate key: weights = %v, %v", w, err)
	}
}

// TestRunAgainstLiveServer drives the full loadgen loop against an
// in-process serve.Server for a short burst and checks the report is
// coherent: requests flowed, no errors, percentiles ordered.
func TestRunAgainstLiveServer(t *testing.T) {
	list, err := dataset.List()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(list))
	defer ts.Close()

	var out bytes.Buffer
	err = run(context.Background(), []string{
		"-target", ts.URL, "-workers", "2", "-duration", "300ms", "-json",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v (output %q)", err, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Requests == 0 || rep.ReqPerSec <= 0 {
		t.Errorf("no load generated: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors against a healthy server: %+v", rep.Errors, rep)
	}
	if rep.P50Micros > rep.P95Micros || rep.P95Micros > rep.P99Micros || rep.P99Micros > rep.MaxMicros {
		t.Errorf("percentiles out of order: %+v", rep)
	}
	var perScenario uint64
	for _, s := range rep.Scenarios {
		perScenario += s.Requests
	}
	if perScenario != rep.Requests {
		t.Errorf("scenario counts sum to %d, want %d", perScenario, rep.Requests)
	}
}

// TestRunFailsOnBrokenTarget: a target answering 500 to everything must
// make run return an error (non-zero exit), so the CI smoke actually
// detects a broken serving plane instead of passing on a sea of errors.
func TestRunFailsOnBrokenTarget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "broken", http.StatusInternalServerError)
	}))
	defer ts.Close()
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL, "-workers", "1", "-duration", "100ms",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "requests failed") {
		t.Errorf("run against a 500ing target: err = %v, want a failure", err)
	}
}

// TestTextReport checks the human-readable rendering.
func TestTextReport(t *testing.T) {
	list, err := dataset.List()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(list))
	defer ts.Close()

	var out bytes.Buffer
	err = run(context.Background(), []string{
		"-target", ts.URL, "-workers", "1", "-duration", "100ms", "-mix", "sameset=1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"req/s", "p50=", "p99=", "sameset"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "partition") {
		t.Errorf("zero-weight scenarios should be omitted:\n%s", text)
	}
}

// TestDeterministicSelection: one worker, same seed, same request
// sequence — the scenario tallies must match run-to-run.
func TestDeterministicSelection(t *testing.T) {
	list, err := dataset.List()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := parseFlags([]string{"-target", "http://unused.invalid", "-seed", "42"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := newGenerator(cfg, list)
	if err != nil {
		t.Fatal(err)
	}
	seq := func() []string {
		rng := newWorkerRNG(cfg.seed, 0)
		var picks []string
		for i := 0; i < 50; i++ {
			sc := g.pick[rng.Intn(len(g.pick))]
			a, b := g.pair(rng)
			picks = append(picks, scenarioNames[sc]+":"+a+","+b)
		}
		return picks
	}
	first, second := seq(), seq()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("pick %d differs: %q vs %q", i, first[i], second[i])
		}
	}
}

// timelineTarget serves a two-version store so the versioned scenarios
// have something to time-travel over.
func timelineTarget(t *testing.T) *httptest.Server {
	t.Helper()
	oldList, err := core.ParseJSON([]byte(`{"sets":[{"primary":"https://a.com","associatedSites":["https://b.com"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	newList, err := dataset.List()
	if err != nil {
		t.Fatal(err)
	}
	st := serve.NewStore(4)
	jan := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	st.Add(oldList, core.Version{Source: "timeline:2023-01", ObservedAt: jan, AsOf: jan})
	mar := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	st.Add(newList, core.Version{Source: "timeline:2024-03", ObservedAt: mar, AsOf: mar})
	ts := httptest.NewServer(serve.NewFromStore(st))
	t.Cleanup(ts.Close)
	return ts
}

// TestVersionedMix drives the asof and diff scenarios against a live
// version store: the generator must prime itself from /v1/versions and
// complete the run error-free.
func TestVersionedMix(t *testing.T) {
	ts := timelineTarget(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL, "-workers", "2", "-duration", "300ms", "-json",
		"-mix", "sameset=2,asof=2,diff=1",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v (output %q)", err, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors in the versioned mix: %+v", rep.Errors, rep)
	}
	byName := map[string]uint64{}
	for _, s := range rep.Scenarios {
		byName[s.Scenario] = s.Requests
	}
	if byName["asof"] == 0 || byName["diff"] == 0 {
		t.Errorf("versioned scenarios never ran: %+v", rep.Scenarios)
	}
}

// TestVersionedMixNeedsVersionPlane: asking for asof against a target
// without /v1/versions (or an unreachable one) fails up front with a
// useful message instead of a sea of per-request errors.
func TestVersionedMixPrimeFailure(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer ts.Close()
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL, "-workers", "1", "-duration", "100ms", "-mix", "asof=1",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "/v1/versions") {
		t.Errorf("err = %v, want a priming failure naming /v1/versions", err)
	}
}

// TestChurnMix drives the churn scenario against a live version store:
// ordered (from, to) pairs drawn from /v1/versions must complete the
// run error-free.
func TestChurnMix(t *testing.T) {
	ts := timelineTarget(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL, "-workers", "2", "-duration", "300ms", "-json",
		"-mix", "sameset=2,diff=1,churn=1",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v (output %q)", err, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors in the churn mix: %+v", rep.Errors, rep)
	}
	byName := map[string]uint64{}
	for _, s := range rep.Scenarios {
		byName[s.Scenario] = s.Requests
	}
	if byName["churn"] == 0 {
		t.Errorf("churn scenario never ran: %+v", rep.Scenarios)
	}
}

func TestParseFlagsAmplify(t *testing.T) {
	cfg, err := parseFlags([]string{"-target", "http://x", "-amplify", "2000", "-amplify-seed", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.amplify != 2000 || cfg.amplifySeed != 4 {
		t.Errorf("parseFlags = %+v", cfg)
	}
	if _, err := parseFlags([]string{"-target", "http://x", "-amplify", "10", "-list", "x.json"}); err == nil {
		t.Error("-amplify with -list should be rejected")
	}
}

// TestAmplifiedHostUniverse proves the generator can draw its host
// universe from an amplified list and that the same -amplify flags
// reproduce the same universe (the property that makes scale-tier runs
// comparable across machines).
func TestAmplifiedHostUniverse(t *testing.T) {
	ctx := context.Background()
	a, err := loadHosts(ctx, config{amplify: 150, amplifySeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadHosts(ctx, config{amplify: 150, amplifySeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSets() != 150 || a.Hash() != b.Hash() {
		t.Errorf("amplified universes differ: %d sets %.12s vs %.12s", a.NumSets(), a.Hash(), b.Hash())
	}
}
