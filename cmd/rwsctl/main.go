// Command rwsctl inspects and validates Related Website Sets lists.
//
// Usage:
//
//	rwsctl stats [-list file]             composition statistics (§4 of the paper)
//	rwsctl related [-list file] A B       are two sites in the same set?
//	rwsctl find [-list file] SITE         which set does a site belong to?
//	rwsctl validate SET.json              run the submission bot's structural checks
//	rwsctl diff OLD.json NEW.json         member-level diff of two list snapshots
//	rwsctl serve [-addr :8080] [-list file]  serve the list as the rws-serve HTTP API
//
// Without -list, the embedded reconstruction of the 26 March 2024 snapshot
// is used.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"rwskit"
	"rwskit/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rwsctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rwsctl <stats|related|find|validate|diff|serve> [args]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "stats":
		return cmdStats(rest, out)
	case "related":
		return cmdRelated(rest, out)
	case "find":
		return cmdFind(rest, out)
	case "validate":
		return cmdValidate(rest, out)
	case "diff":
		return cmdDiff(rest, out)
	case "serve":
		return cmdServe(rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func loadList(path string) (*rwskit.List, error) {
	if path == "" {
		return rwskit.Snapshot()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return rwskit.ParseList(data)
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	listPath := fs.String("list", "", "list JSON file (default: embedded snapshot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	list, err := loadList(*listPath)
	if err != nil {
		return err
	}
	s := list.Stats()
	fmt.Fprintf(out, "sets:                 %d\n", s.Sets)
	fmt.Fprintf(out, "associated sites:     %d (%.1f%% of sets have one or more)\n",
		s.AssociatedSites, 100*s.FracSetsWithAssociated())
	fmt.Fprintf(out, "service sites:        %d (%.1f%% of sets)\n",
		s.ServiceSites, 100*s.FracSetsWithService())
	fmt.Fprintf(out, "ccTLD sites:          %d (%.1f%% of sets)\n",
		s.CCTLDSites, 100*s.FracSetsWithCCTLD())
	fmt.Fprintf(out, "mean associated/set:  %.2f\n", s.MeanAssociatedPerSet)
	return nil
}

func cmdRelated(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("related", flag.ContinueOnError)
	listPath := fs.String("list", "", "list JSON file (default: embedded snapshot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: rwsctl related [-list file] A B")
	}
	list, err := loadList(*listPath)
	if err != nil {
		return err
	}
	a, b := fs.Arg(0), fs.Arg(1)
	if list.SameSet(a, b) {
		set, _, _ := list.FindSet(a)
		fmt.Fprintf(out, "RELATED: %s and %s are members of the set with primary %s\n", a, b, set.Primary)
		fmt.Fprintf(out, "Under Chrome's RWS policy, either site may gain unpartitioned\nstorage access while embedded in the other.\n")
	} else {
		fmt.Fprintf(out, "not related: %s and %s are not members of the same set\n", a, b)
	}
	return nil
}

func cmdFind(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("find", flag.ContinueOnError)
	listPath := fs.String("list", "", "list JSON file (default: embedded snapshot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rwsctl find [-list file] SITE")
	}
	list, err := loadList(*listPath)
	if err != nil {
		return err
	}
	set, role, ok := list.FindSet(fs.Arg(0))
	if !ok {
		fmt.Fprintf(out, "%s is not on the list\n", fs.Arg(0))
		return nil
	}
	fmt.Fprintf(out, "site:    %s\n", fs.Arg(0))
	fmt.Fprintf(out, "role:    %s\n", role)
	fmt.Fprintf(out, "primary: %s\n", set.Primary)
	fmt.Fprintf(out, "members (%d):\n", set.Size())
	for _, m := range set.Members() {
		fmt.Fprintf(out, "  %-11s %s\n", m.Role.String(), m.Site)
	}
	return nil
}

func cmdValidate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rwsctl validate SET.json")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	set, err := rwskit.ParseSet(data)
	if err != nil {
		return err
	}
	rep := rwskit.ValidateSetOffline(context.Background(), set)
	if rep.Passed() {
		fmt.Fprintf(out, "OK: set with primary %s passes all structural checks\n", set.Primary)
		fmt.Fprintln(out, "(network checks — .well-known files, X-Robots-Tag — need the sites live)")
		return nil
	}
	fmt.Fprintf(out, "FAILED: %d issue(s)\n", len(rep.Issues))
	for _, issue := range rep.Issues {
		fmt.Fprintf(out, "  - %s\n", issue)
	}
	return fmt.Errorf("validation failed")
}

// cmdServe starts the rws-serve HTTP API in-process. serveAndListen is a
// variable so tests can intercept the blocking listen call.
func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	listPath := fs.String("list", "", "list JSON file (default: embedded snapshot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: rwsctl serve [-addr :8080] [-list file]")
	}
	list, err := loadList(*listPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving %d sets on %s\n", list.NumSets(), *addr)
	return serveAndListen(*addr, serve.New(list))
}

var serveAndListen = func(addr string, handler http.Handler) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}

func cmdDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: rwsctl diff OLD.json NEW.json")
	}
	oldList, err := loadList(fs.Arg(0))
	if err != nil {
		return err
	}
	newList, err := loadList(fs.Arg(1))
	if err != nil {
		return err
	}
	d := rwskit.DiffLists(oldList, newList)
	if d.Empty() {
		fmt.Fprintln(out, "no changes")
		return nil
	}
	for _, p := range d.AddedSets {
		fmt.Fprintf(out, "+ set %s\n", p)
	}
	for _, p := range d.RemovedSets {
		fmt.Fprintf(out, "- set %s\n", p)
	}
	for _, m := range d.AddedMembers {
		fmt.Fprintf(out, "+ member %s\n", m)
	}
	for _, m := range d.RemovedMembers {
		fmt.Fprintf(out, "- member %s\n", m)
	}
	return nil
}
