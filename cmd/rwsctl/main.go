// Command rwsctl inspects and validates Related Website Sets lists.
//
// Usage:
//
//	rwsctl stats [-list file]             composition statistics (§4 of the paper)
//	rwsctl related [-list file] A B       are two sites in the same set?
//	rwsctl find [-list file] SITE         which set does a site belong to?
//	rwsctl validate SET.json              run the submission bot's structural checks
//	rwsctl diff OLD.json NEW.json         member-level diff of two list snapshots
//	rwsctl diff -server URL FROM TO       diff two versions held by a running rws-serve
//	rwsctl versions -server URL           list the versions a running rws-serve retains
//	rwsctl churn -server URL [FROM [TO]]  churn rollup over the retained version chain
//	rwsctl serve [-addr :8080] [-list file]  serve the list as the rws-serve HTTP API
//	rwsctl lint [-json] [pattern ...]     run the in-tree invariant suite (cmd/rws-lint)
//
// Without -list, the embedded reconstruction of the 26 March 2024 snapshot
// is used. The -server verbs talk to rws-serve's version plane
// (/v1/versions, /v1/diff); FROM and TO accept a version hash prefix, an
// as-of time ("2023-04", "2023-04-26", RFC 3339), or "current", and
// -json passes the server's JSON through verbatim.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"rwskit"
	"rwskit/internal/lint"
	"rwskit/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rwsctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rwsctl <stats|related|find|validate|diff|versions|churn|serve|lint> [args]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "stats":
		return cmdStats(rest, out)
	case "related":
		return cmdRelated(rest, out)
	case "find":
		return cmdFind(rest, out)
	case "validate":
		return cmdValidate(rest, out)
	case "diff":
		return cmdDiff(rest, out)
	case "versions":
		return cmdVersions(rest, out)
	case "churn":
		return cmdChurn(rest, out)
	case "serve":
		return cmdServe(rest, out)
	case "lint":
		return cmdLint(rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// cmdLint is the passthrough verb for the in-tree invariant suite (see
// cmd/rws-lint): it runs every analyzer over the enclosing module (or
// the given patterns) and fails on any finding, so a checkout with only
// rwsctl built still has the lint gate one verb away. -json emits the
// findings in rws-lint's machine-readable array form.
func cmdLint(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the findings as a JSON array")
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	diags, err := lint.LintPatterns(cwd, patterns)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := lint.EncodeJSON(out, diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		return fmt.Errorf("%d lint finding(s)", len(diags))
	}
	return nil
}

func loadList(path string) (*rwskit.List, error) {
	if path == "" {
		return rwskit.Snapshot()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return rwskit.ParseList(data)
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	listPath := fs.String("list", "", "list JSON file (default: embedded snapshot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	list, err := loadList(*listPath)
	if err != nil {
		return err
	}
	s := list.Stats()
	fmt.Fprintf(out, "sets:                 %d\n", s.Sets)
	fmt.Fprintf(out, "associated sites:     %d (%.1f%% of sets have one or more)\n",
		s.AssociatedSites, 100*s.FracSetsWithAssociated())
	fmt.Fprintf(out, "service sites:        %d (%.1f%% of sets)\n",
		s.ServiceSites, 100*s.FracSetsWithService())
	fmt.Fprintf(out, "ccTLD sites:          %d (%.1f%% of sets)\n",
		s.CCTLDSites, 100*s.FracSetsWithCCTLD())
	fmt.Fprintf(out, "mean associated/set:  %.2f\n", s.MeanAssociatedPerSet)
	return nil
}

func cmdRelated(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("related", flag.ContinueOnError)
	listPath := fs.String("list", "", "list JSON file (default: embedded snapshot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: rwsctl related [-list file] A B")
	}
	list, err := loadList(*listPath)
	if err != nil {
		return err
	}
	a, b := fs.Arg(0), fs.Arg(1)
	if list.SameSet(a, b) {
		set, _, _ := list.FindSet(a)
		fmt.Fprintf(out, "RELATED: %s and %s are members of the set with primary %s\n", a, b, set.Primary)
		fmt.Fprintf(out, "Under Chrome's RWS policy, either site may gain unpartitioned\nstorage access while embedded in the other.\n")
	} else {
		fmt.Fprintf(out, "not related: %s and %s are not members of the same set\n", a, b)
	}
	return nil
}

func cmdFind(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("find", flag.ContinueOnError)
	listPath := fs.String("list", "", "list JSON file (default: embedded snapshot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rwsctl find [-list file] SITE")
	}
	list, err := loadList(*listPath)
	if err != nil {
		return err
	}
	set, role, ok := list.FindSet(fs.Arg(0))
	if !ok {
		fmt.Fprintf(out, "%s is not on the list\n", fs.Arg(0))
		return nil
	}
	fmt.Fprintf(out, "site:    %s\n", fs.Arg(0))
	fmt.Fprintf(out, "role:    %s\n", role)
	fmt.Fprintf(out, "primary: %s\n", set.Primary)
	fmt.Fprintf(out, "members (%d):\n", set.Size())
	for _, m := range set.Members() {
		fmt.Fprintf(out, "  %-11s %s\n", m.Role.String(), m.Site)
	}
	return nil
}

func cmdValidate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rwsctl validate SET.json")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	set, err := rwskit.ParseSet(data)
	if err != nil {
		return err
	}
	rep := rwskit.ValidateSetOffline(context.Background(), set)
	if rep.Passed() {
		fmt.Fprintf(out, "OK: set with primary %s passes all structural checks\n", set.Primary)
		fmt.Fprintln(out, "(network checks — .well-known files, X-Robots-Tag — need the sites live)")
		return nil
	}
	fmt.Fprintf(out, "FAILED: %d issue(s)\n", len(rep.Issues))
	for _, issue := range rep.Issues {
		fmt.Fprintf(out, "  - %s\n", issue)
	}
	return fmt.Errorf("validation failed")
}

// cmdServe starts the rws-serve HTTP API in-process. serveAndListen is a
// variable so tests can intercept the blocking listen call.
func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	listPath := fs.String("list", "", "list JSON file (default: embedded snapshot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: rwsctl serve [-addr :8080] [-list file]")
	}
	list, err := loadList(*listPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving %d sets on %s\n", list.NumSets(), *addr)
	return serveAndListen(*addr, serve.New(list))
}

var serveAndListen = func(addr string, handler http.Handler) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}

func cmdDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	server := fs.String("server", "", "rws-serve base URL: diff two retained versions instead of two files")
	jsonOut := fs.Bool("json", false, "emit the diff as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: rwsctl diff [-server URL] [-json] <OLD.json NEW.json | FROM TO>")
	}
	if *server != "" {
		return remoteDiff(*server, fs.Arg(0), fs.Arg(1), *jsonOut, out)
	}
	oldList, err := loadList(fs.Arg(0))
	if err != nil {
		return err
	}
	newList, err := loadList(fs.Arg(1))
	if err != nil {
		return err
	}
	d := rwskit.DiffLists(oldList, newList)
	if *jsonOut {
		return writeIndented(out, struct {
			Empty          bool     `json:"empty"`
			Summary        string   `json:"summary"`
			AddedSets      []string `json:"added_sets,omitempty"`
			RemovedSets    []string `json:"removed_sets,omitempty"`
			AddedMembers   []string `json:"added_members,omitempty"`
			RemovedMembers []string `json:"removed_members,omitempty"`
		}{d.Empty(), d.Summary(), d.AddedSets, d.RemovedSets, d.AddedMembers, d.RemovedMembers})
	}
	writeDiffLines(out, d.AddedSets, d.RemovedSets, d.AddedMembers, d.RemovedMembers)
	return nil
}

// writeDiffLines renders a diff in the +/- line format both the file and
// server diff verbs share. Empty diffs print "no changes".
func writeDiffLines(out io.Writer, addedSets, removedSets, addedMembers, removedMembers []string) {
	if len(addedSets)+len(removedSets)+len(addedMembers)+len(removedMembers) == 0 {
		fmt.Fprintln(out, "no changes")
		return
	}
	for _, p := range addedSets {
		fmt.Fprintf(out, "+ set %s\n", p)
	}
	for _, p := range removedSets {
		fmt.Fprintf(out, "- set %s\n", p)
	}
	for _, m := range addedMembers {
		fmt.Fprintf(out, "+ member %s\n", m)
	}
	for _, m := range removedMembers {
		fmt.Fprintf(out, "- member %s\n", m)
	}
}

func writeIndented(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// serverGET fetches path from an rws-serve instance. With raw set the
// body is passed through to out verbatim (the -json contract); otherwise
// it is decoded into into. Non-200 responses surface the server's JSON
// error envelope.
func serverGET(server, path string, raw bool, out io.Writer, into any) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(strings.TrimSuffix(server, "/") + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s", e.Error)
		}
		return fmt.Errorf("server returned %s for %s", resp.Status, path)
	}
	if raw {
		_, err := io.Copy(out, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func remoteDiff(server, from, to string, jsonOut bool, out io.Writer) error {
	path := "/v1/diff?from=" + url.QueryEscape(from) + "&to=" + url.QueryEscape(to)
	if jsonOut {
		return serverGET(server, path, true, out, nil)
	}
	var d serve.DiffResponse
	if err := serverGET(server, path, false, nil, &d); err != nil {
		return err
	}
	fmt.Fprintf(out, "from %.12s (%s, %d sets) to %.12s (%s, %d sets): %s\n",
		d.From.Hash, d.From.AsOf.Format("2006-01-02"), d.From.Sets,
		d.To.Hash, d.To.AsOf.Format("2006-01-02"), d.To.Sets, d.Summary)
	if !d.Empty {
		writeDiffLines(out, d.AddedSets, d.RemovedSets, d.AddedMembers, d.RemovedMembers)
	}
	return nil
}

func cmdChurn(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("churn", flag.ContinueOnError)
	server := fs.String("server", "", "rws-serve base URL (required)")
	granularity := fs.String("granularity", "step", "rollup granularity: step, month, or total")
	top := fs.Int("top", 10, "most-volatile sets to rank (0 disables the table)")
	jsonOut := fs.Bool("json", false, "emit the churn report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" || fs.NArg() > 2 {
		return fmt.Errorf("usage: rwsctl churn -server URL [-granularity step|month|total] [-top N] [-json] [FROM [TO]]")
	}
	params := url.Values{}
	params.Set("granularity", *granularity)
	params.Set("top", fmt.Sprint(*top))
	if fs.NArg() >= 1 {
		params.Set("from", fs.Arg(0))
	}
	if fs.NArg() == 2 {
		params.Set("to", fs.Arg(1))
	}
	path := "/v1/churn?" + params.Encode()
	if *jsonOut {
		return serverGET(*server, path, true, out, nil)
	}
	var c serve.ChurnResponse
	if err := serverGET(*server, path, false, nil, &c); err != nil {
		return err
	}
	fmt.Fprintf(out, "churn %.12s (%s) → %.12s (%s): %d versions, granularity %s\n",
		c.From.Hash, c.From.AsOf.Format("2006-01-02"),
		c.To.Hash, c.To.AsOf.Format("2006-01-02"), c.Versions, c.Granularity)
	if len(c.Steps) > 0 {
		fmt.Fprintf(out, "%-8s  %5s  %5s  %5s  %5s  %5s  %s\n",
			"STEP", "+SETS", "-SETS", "~SETS", "+MEM", "-MEM", "RENAMES")
		for _, s := range c.Steps {
			renames := ""
			for i, rn := range s.Renames {
				if i > 0 {
					renames += ", "
				}
				renames += rn.From + "→" + rn.To
			}
			fmt.Fprintf(out, "%-8s  %5d  %5d  %5d  %5d  %5d  %s\n",
				s.Label, s.SetsAdded, s.SetsRemoved, s.SetsMutated,
				s.MembersAdded, s.MembersRemoved, renames)
		}
	}
	fmt.Fprintf(out, "cumulative: %s\n", c.Cumulative.Summary)
	fmt.Fprintf(out, "sets churned %d (born %d, died %d, renamed %d), members churned %d\n",
		c.SetsChurned, c.SetsBorn, c.SetsDied, c.SetsRenamed, c.MembersChurned)
	if len(c.TopVolatile) > 0 {
		fmt.Fprintf(out, "most volatile sets:\n")
		fmt.Fprintf(out, "  %-28s  %10s  %9s  %11s  %s\n",
			"PRIMARY", "VOLATILITY", "MUTATIONS", "MEMBER-CHURN", "LIFECYCLE")
		for _, lc := range c.TopVolatile {
			var events []string
			if lc.Born {
				events = append(events, "born")
			}
			if lc.Died {
				events = append(events, "died")
			}
			if lc.RenamedFrom != "" {
				events = append(events, "renamed from "+lc.RenamedFrom)
			}
			if lc.RenamedTo != "" {
				events = append(events, "renamed to "+lc.RenamedTo)
			}
			fmt.Fprintf(out, "  %-28s  %10d  %9d  %11d  %s\n",
				lc.Primary, lc.Volatility, lc.Mutations, lc.MemberChurn, strings.Join(events, ", "))
		}
	}
	return nil
}

func cmdVersions(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("versions", flag.ContinueOnError)
	server := fs.String("server", "", "rws-serve base URL (required)")
	jsonOut := fs.Bool("json", false, "emit the version list as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 || *server == "" {
		return fmt.Errorf("usage: rwsctl versions -server URL [-json]")
	}
	if *jsonOut {
		return serverGET(*server, "/v1/versions", true, out, nil)
	}
	var vs serve.VersionsResponse
	if err := serverGET(*server, "/v1/versions", false, nil, &vs); err != nil {
		return err
	}
	fmt.Fprintf(out, "%d of %d version slots in use\n", vs.Retained, vs.Capacity)
	fmt.Fprintf(out, "%-12s  %-10s  %5s  %5s  %-7s  %s\n", "VERSION", "AS OF", "SETS", "SITES", "CURRENT", "SOURCE")
	for _, v := range vs.Versions {
		current := ""
		if v.Current {
			current = "*"
		}
		fmt.Fprintf(out, "%-12.12s  %-10s  %5d  %5d  %-7s  %s\n",
			v.Hash, v.AsOf.Format("2006-01-02"), v.Sets, v.Sites, current, v.Source)
	}
	return nil
}
