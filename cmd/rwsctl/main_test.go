package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rwskit"
)

func TestStats(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"stats"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sets:                 41") {
		t.Errorf("stats output:\n%s", out)
	}
	if !strings.Contains(out, "associated sites:     108") {
		t.Errorf("stats output:\n%s", out)
	}
}

func TestRelated(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"related", "bild.de", "autobild.de"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "RELATED") {
		t.Errorf("output: %s", sb.String())
	}
	sb.Reset()
	if err := run([]string{"related", "bild.de", "ya.ru"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "not related") {
		t.Errorf("output: %s", sb.String())
	}
}

func TestFind(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"find", "webvisor.com"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "primary: ya.ru") || !strings.Contains(out, "role:    associated") {
		t.Errorf("output:\n%s", out)
	}
	sb.Reset()
	if err := run([]string{"find", "unknown.example"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "not on the list") {
		t.Errorf("output: %s", sb.String())
	}
}

func TestValidateGoodAndBad(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"primary":"https://example.com",
	  "associatedSites":["https://other.com"],
	  "rationaleBySite":{"https://other.com":"branding"}}`), 0o644)
	var sb strings.Builder
	if err := run([]string{"validate", good}, &sb); err != nil {
		t.Fatalf("good set failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "OK") {
		t.Errorf("output: %s", sb.String())
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"primary":"https://www.example.com","associatedSites":["https://a.example.com"]}`), 0o644)
	sb.Reset()
	if err := run([]string{"validate", bad}, &sb); err == nil {
		t.Fatal("bad set should fail")
	}
	if !strings.Contains(sb.String(), "eTLD+1") {
		t.Errorf("output: %s", sb.String())
	}
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	os.WriteFile(oldP, []byte(`{"sets":[{"primary":"https://a.com","associatedSites":["https://b.com"]}]}`), 0o644)
	os.WriteFile(newP, []byte(`{"sets":[{"primary":"https://a.com","associatedSites":["https://b.com","https://c.com"]},{"primary":"https://d.com"}]}`), 0o644)
	var sb strings.Builder
	if err := run([]string{"diff", oldP, newP}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "+ set d.com") || !strings.Contains(out, "+ member a.com:c.com") {
		t.Errorf("output:\n%s", out)
	}
}

// TestServe intercepts the blocking listen call and exercises the wired
// HTTP handler the way rwsctl serve would expose it.
func TestServe(t *testing.T) {
	orig := serveAndListen
	defer func() { serveAndListen = orig }()
	var handler http.Handler
	serveAndListen = func(addr string, h http.Handler) error {
		handler = h
		return nil
	}
	var sb strings.Builder
	if err := run([]string{"serve", "-addr", ":0"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "serving 41 sets") {
		t.Errorf("output: %s", sb.String())
	}
	if handler == nil {
		t.Fatal("serve never reached the listen call")
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/sameset?a=bild.de&b=autobild.de")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"same_set":true`) {
		t.Errorf("status %d body %s", resp.StatusCode, body)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"related", "only-one"},
		{"find"},
		{"validate"},
		{"diff", "one"},
		{"serve", "positional"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

// timelineServer serves a small two-version store over httptest for the
// -server verbs.
func timelineServer(t *testing.T) *httptest.Server {
	t.Helper()
	oldList, err := rwskit.ParseList([]byte(`{"sets":[{"primary":"https://a.com","associatedSites":["https://b.com"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	newList, err := rwskit.ParseList([]byte(`{"sets":[{"primary":"https://a.com","associatedSites":["https://b.com","https://c.com"]},{"primary":"https://d.com"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	st := rwskit.NewServerStore(4)
	jan := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	st.Add(oldList, rwskit.Version{Source: "timeline:2023-01", ObservedAt: jan, AsOf: jan})
	feb := time.Date(2023, 2, 1, 0, 0, 0, 0, time.UTC)
	st.Add(newList, rwskit.Version{Source: "timeline:2023-02", ObservedAt: feb, AsOf: feb})
	ts := httptest.NewServer(rwskit.NewServerFromStore(st))
	t.Cleanup(ts.Close)
	return ts
}

func TestVersionsVerb(t *testing.T) {
	ts := timelineServer(t)
	var sb strings.Builder
	if err := run([]string{"versions", "-server", ts.URL}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"2 of 4 version slots", "timeline:2023-01", "timeline:2023-02", "VERSION", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("versions output missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := run([]string{"versions", "-server", ts.URL, "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var body struct {
		Retained int `json:"retained"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &body); err != nil || body.Retained != 2 {
		t.Errorf("-json output: %v, %s", err, sb.String())
	}
}

func TestDiffVerbAgainstServer(t *testing.T) {
	ts := timelineServer(t)
	var sb strings.Builder
	if err := run([]string{"diff", "-server", ts.URL, "2023-01", "current"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"+ set d.com", "+ member a.com:c.com", "2023-01-01"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}

	// Identical endpoints: "no changes".
	sb.Reset()
	if err := run([]string{"diff", "-server", ts.URL, "current", "current"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no semantic changes") {
		t.Errorf("self-diff output:\n%s", sb.String())
	}

	// -json passes the server body through.
	sb.Reset()
	if err := run([]string{"diff", "-server", ts.URL, "-json", "2023-01", "current"}, &sb); err != nil {
		t.Fatal(err)
	}
	var body struct {
		AddedSets []string `json:"added_sets"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &body); err != nil || len(body.AddedSets) != 1 {
		t.Errorf("-json diff: %v, %s", err, sb.String())
	}

	// Server-side resolution failures surface the server's error.
	if err := run([]string{"diff", "-server", ts.URL, "2020-01", "current"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "no version") {
		t.Errorf("unknown as-of: err = %v", err)
	}
}

func TestChurnVerb(t *testing.T) {
	ts := timelineServer(t)
	var sb strings.Builder
	if err := run([]string{"churn", "-server", ts.URL}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"2 versions", "granularity step", "STEP", "+SETS", "cumulative:", "sets churned", "most volatile sets", "d.com"} {
		if !strings.Contains(out, want) {
			t.Errorf("churn output missing %q:\n%s", want, out)
		}
	}

	// Explicit endpoints and -json pass-through.
	sb.Reset()
	if err := run([]string{"churn", "-server", ts.URL, "-json", "2023-01", "current"}, &sb); err != nil {
		t.Fatal(err)
	}
	var body struct {
		Steps []struct {
			SetsAdded int `json:"sets_added"`
		} `json:"steps"`
		SetsChurned int `json:"sets_churned"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &body); err != nil {
		t.Fatalf("-json churn: %v, %s", err, sb.String())
	}
	if len(body.Steps) != 1 || body.Steps[0].SetsAdded != 1 || body.SetsChurned != 2 {
		t.Errorf("-json churn = %+v, want one step adding d.com and churning 2 sets", body)
	}

	// Server-side failures surface the server's error.
	if err := run([]string{"churn", "-server", ts.URL, "2020-01"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "no version") {
		t.Errorf("unknown from: err = %v", err)
	}
	// Usage errors.
	if err := run([]string{"churn"}, &sb); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("missing -server: err = %v", err)
	}
}
