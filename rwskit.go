// Package rwskit is a Go implementation and measurement toolkit for
// Google's Related Website Sets (RWS) proposal, built as a full
// reproduction of "A First Look at Related Website Sets" (McQuistin,
// Snyder, Haddadi, Tyson — IMC 2024).
//
// The package is the public facade over the internal implementation. It
// provides:
//
//   - the RWS list model in the upstream related_website_sets.JSON schema,
//     with canonicalisation, relatedness queries, and snapshot diffing;
//   - a Public Suffix List engine and eTLD+1 (site) semantics;
//   - the full set-submission validator (the GitHub bot's checks,
//     including live ".well-known/related-website-set.json" verification);
//   - a browser storage-partitioning simulator with per-vendor policies
//     (strict, prompt-based, Chrome+RWS, legacy unpartitioned);
//   - the paper's measurement pipelines: the §3 relatedness user study,
//     SLD edit-distance and HTML-similarity analyses, list composition
//     and category timelines, and the GitHub governance analysis;
//   - a parallel experiment runner that regenerates every table and figure
//     in the paper's evaluation (see EXPERIMENTS.md), sharing one build of
//     each expensive intermediate across experiments; and
//   - an HTTP query service (rws-serve) answering relatedness, set, and
//     storage-partitioning queries against a hot-swappable list snapshot.
//
// # Quick start
//
//	list, err := rwskit.Snapshot() // embedded 26 Mar 2024 reconstruction
//	if err != nil { ... }
//	related := list.SameSet("bild.de", "autobild.de") // true
//
//	arts, err := rwskit.RunExperiments(context.Background(), 1)
//	for _, a := range arts {
//		fmt.Println(a.Rendered)
//	}
//
// Determinism: every stochastic component takes an explicit seed; the
// same seed reproduces every artifact bit-for-bit.
package rwskit

import (
	"context"
	"sort"
	"strings"
	"time"

	"rwskit/internal/amplify"
	"rwskit/internal/analysis"
	"rwskit/internal/browser"
	"rwskit/internal/core"
	"rwskit/internal/dataset"
	"rwskit/internal/disconnect"
	"rwskit/internal/domain"
	"rwskit/internal/psl"
	"rwskit/internal/serve"
	"rwskit/internal/source"
	"rwskit/internal/validate"
	"rwskit/internal/wellknown"
)

// List is a Related Website Sets list: a collection of disjoint sets with
// an index for relatedness queries.
type List = core.List

// Set is one Related Website Set.
type Set = core.Set

// Member is a site's membership record within a set.
type Member = core.Member

// Role identifies how a site participates in a set.
type Role = core.Role

// Roles, mirroring the upstream schema's subsets.
const (
	RolePrimary    = core.RolePrimary
	RoleAssociated = core.RoleAssociated
	RoleService    = core.RoleService
	RoleCCTLD      = core.RoleCCTLD
)

// ParseList parses a list in the upstream related_website_sets.JSON
// schema.
func ParseList(data []byte) (*List, error) { return core.ParseJSON(data) }

// ParseSet parses a single set object (the payload of an RWS pull
// request).
func ParseSet(data []byte) (*Set, error) { return core.ParseSetJSON(data) }

// Snapshot returns the embedded reconstruction of the RWS list as of 26
// March 2024 — the snapshot analysed throughout the paper.
func Snapshot() (*List, error) { return dataset.List() }

// Diff describes how a list changed between two snapshots.
type Diff = core.Diff

// DiffLists compares two list snapshots by set primary.
func DiffLists(old, new *List) Diff { return core.DiffLists(old, new) }

// ComposeDiffs combines the diffs old→mid and mid→new into old→new,
// cancelling changes that were undone across the span. See
// core.ComposeDiffs for the one caveat (a set removed and re-added).
func ComposeDiffs(a, b Diff) Diff { return core.ComposeDiffs(a, b) }

// ChurnReport digests a chronological chain of list snapshots: per-step
// and cumulative add/remove/mutate counts, per-set lifecycles (born,
// died, renamed), and a volatility ranking. rws-serve's /v1/churn
// endpoint serves the same digest over its retained version chain.
type ChurnReport = core.ChurnReport

// ChurnStep is one transition of a ChurnReport.
type ChurnStep = core.ChurnStep

// SetLifecycle tracks one set primary across a churn window.
type SetLifecycle = core.SetLifecycle

// Churn builds a ChurnReport over a chronological snapshot chain.
// adjacent, when non-nil, must hold DiffLists(lists[i], lists[i+1]) at
// index i (callers with precomputed diffs pass them; nil recomputes).
func Churn(lists []*List, adjacent []Diff) (ChurnReport, error) {
	return core.Churn(lists, adjacent)
}

// Version identifies one list revision held by a version store: content
// hash plus provenance (source, observed-at, as-of time).
type Version = core.Version

// CanonicalHost normalizes a site spelling to the canonical bare-host
// form list lookups use: lowercased, scheme prefix, ":port" suffix,
// trailing slash, and trailing root-label dot stripped. All of
// "example.com", "HTTPS://EXAMPLE.COM:443/", and "example.com." answer
// the same in SameSet, FindSet, and every rws-serve endpoint.
func CanonicalHost(s string) string { return core.CanonicalHost(s) }

// SuffixList is a compiled Public Suffix List.
type SuffixList = psl.List

// DefaultSuffixList returns the embedded Public Suffix List snapshot.
func DefaultSuffixList() *SuffixList { return psl.Default() }

// ETLDPlusOne returns the registrable domain (eTLD+1) of host under the
// default suffix list — the Web's site-as-privacy-boundary unit.
func ETLDPlusOne(host string) (string, error) {
	norm, err := domain.Normalize(host)
	if err != nil {
		return "", err
	}
	return psl.Default().ETLDPlusOne(norm)
}

// SLD returns the second-level domain label of host ("poalim" for
// "poalim.xyz"), the unit compared in the paper's Figure 3.
func SLD(host string) (string, error) {
	return domain.SLD(psl.Default(), host)
}

// ValidationReport is the outcome of validating a proposed set.
type ValidationReport = validate.Report

// ValidationIssue is a single bot-comment-style validation failure.
type ValidationIssue = validate.Issue

// ValidationCode is a bot comment category (the Table 3 labels).
type ValidationCode = validate.Code

// Validator runs the RWS submission checks.
type Validator = validate.Validator

// NewValidator returns a validator using the default suffix list. fetch
// may be nil for structural-only validation; existing may be nil to skip
// the disjointness check. See rwskit/internal/wellknown.HTTPFetcher for
// wiring a live fetcher.
func NewValidator(fetch wellknown.Fetcher, existing *List) *Validator {
	return validate.New(psl.Default(), fetch, existing)
}

// ValidateSetOffline runs the structural (non-network) submission checks
// against a proposed set.
func ValidateSetOffline(ctx context.Context, s *Set) ValidationReport {
	return validate.New(psl.Default(), nil, nil).ValidateSet(ctx, s)
}

// WellKnownPath is the path every set member must serve its RWS membership
// document on.
const WellKnownPath = wellknown.Path

// Browser is a simulated browsing profile with partitioned storage.
type Browser = browser.Browser

// Policy decides storage semantics for a vendor configuration.
type Policy = browser.Policy

// NewStrictBrowser returns a profile that always partitions third-party
// storage and never grants access (Brave-like).
func NewStrictBrowser() *Browser { return browser.New(browser.StrictPolicy{}) }

// NewPromptBrowser returns a profile that partitions by default and defers
// storage-access requests to the prompt function (Firefox/Safari-like).
func NewPromptBrowser(prompt browser.PromptFunc) *Browser {
	return browser.New(browser.PromptPolicy{Prompt: prompt})
}

// NewRWSBrowser returns a Chrome-like profile that auto-grants storage
// access between members of the same Related Website Set.
func NewRWSBrowser(list *List) *Browser {
	return browser.New(browser.RWSPolicy{List: list})
}

// NewLegacyBrowser returns a profile with no partitioning at all (the
// third-party-cookie world).
func NewLegacyBrowser() *Browser { return browser.New(browser.LegacyPolicy{}) }

// EntitiesList is a Disconnect-style entities list: domains grouped by
// owning organisation, the ownership-based analogue of the RWS list that
// §5 of the paper compares against.
type EntitiesList = disconnect.List

// OwnershipComparison quantifies the RWS "associated sites" relaxation
// against an ownership-based entities list.
type OwnershipComparison = disconnect.Comparison

// ParseEntitiesList parses the upstream Disconnect entities JSON format.
func ParseEntitiesList(data []byte) (*EntitiesList, error) {
	return disconnect.ParseJSON(data)
}

// CompareOwnership measures how much of the RWS relatedness relation is
// backed by common ownership per the entities list — the paper's §5
// "crucial difference".
func CompareOwnership(entities *EntitiesList, rws *List) OwnershipComparison {
	return disconnect.CompareWithRWS(entities, rws)
}

// GrantNotice is a user-visible indication that a privacy boundary was
// relaxed — the browser-UI mechanism the paper's conclusion proposes.
type GrantNotice = browser.Notice

// IndicatingPolicy wraps a policy and records a GrantNotice for every
// grant it issues.
type IndicatingPolicy = browser.IndicatingPolicy

// NewIndicatingRWSBrowser returns a Chrome-like RWS browser whose grants
// are surfaced as user-visible notices, plus the policy wrapper holding
// them.
func NewIndicatingRWSBrowser(list *List) (*Browser, *IndicatingPolicy) {
	p := &browser.IndicatingPolicy{Inner: browser.RWSPolicy{List: list}}
	return browser.New(p), p
}

// Server answers RWS queries over HTTP (sameset incl. batch pairs, set,
// partition incl. POST batch, stats, metrics, and the /v1/list
// replication export other Servers can follow) against a hot-swappable
// precomputed snapshot. See rwskit/internal/serve for the endpoint
// contract and cmd/rws-serve for the standalone binary.
type Server = serve.Server

// NewServer returns an http.Handler serving RWS queries against list,
// precomputing the query plane (host index, per-role tables, partition
// verdict table) once up front. Server.Swap hot-swaps it under traffic.
func NewServer(list *List) *Server { return serve.New(list) }

// ServerSnapshot is the immutable precomputed query plane a Server
// answers from: normalized host index, per-role membership tables, and
// the per-policy partition-verdict table.
type ServerSnapshot = serve.Snapshot

// NewServerSnapshot precomputes the query plane for list without
// installing it in a server; Server.SwapSnapshot installs a prebuilt one,
// keeping the precompute off the serving path.
func NewServerSnapshot(list *List) *ServerSnapshot { return serve.NewSnapshot(list) }

// SnapshotOptions configures BuildServerSnapshot: construction shard
// count, a memory budget with graceful degradation, and the retained
// serial reference path.
type SnapshotOptions = serve.SnapshotOptions

// SnapshotBuildInfo reports how a snapshot was constructed (shards,
// build time, estimated footprint, budget decisions); also surfaced by
// /v1/metrics as snapshot_build.
type SnapshotBuildInfo = serve.BuildInfo

// BuildServerSnapshot is NewServerSnapshot with explicit construction
// options. It errors only when a MemoryBudget is set and the list's
// derived tables cannot fit even after degrading.
func BuildServerSnapshot(list *List, opts SnapshotOptions) (*ServerSnapshot, error) {
	return serve.BuildSnapshot(list, opts)
}

// ServerStore is a bounded version store of precomputed snapshots: the
// current version serves the lock-free fast path, superseded versions
// stay queryable by hash or as-of time, and diffs between any two
// retained versions are exact DiffLists results.
type ServerStore = serve.Store

// ServerVersionInfo describes one retained version in a store listing.
type ServerVersionInfo = serve.VersionInfo

// NewServerStore returns an empty version store retaining up to capacity
// versions (capacity < 1 selects serve.DefaultRetain). Add at least one
// version before serving from it.
func NewServerStore(capacity int) *ServerStore { return serve.NewStore(capacity) }

// NewServerStoreWith is NewServerStore with explicit snapshot
// construction options applied to every list the store precomputes.
func NewServerStoreWith(capacity int, opts SnapshotOptions) *ServerStore {
	return serve.NewStoreWith(capacity, opts)
}

// AmplifyConfig configures AmplifyList: the set count, the seed, and an
// optional composition profile (nil samples the embedded snapshot's
// empirical distributions).
type AmplifyConfig = amplify.Config

// AmplifyProfile holds the empirical per-set fan-out distributions an
// amplified list is sampled from; derive one from any list with
// amplify.ProfileOf.
type AmplifyProfile = amplify.Profile

// AmplifyList generates a deterministic synthetic RWS list at the
// configured scale (10⁴–10⁶ sets), shaped like the real list: every set
// passes the structural submission checks and aggregate composition
// matches the embedded snapshot's distributions within sampling noise.
// The same config reproduces the same list bit-for-bit.
func AmplifyList(cfg AmplifyConfig) (*List, error) { return amplify.Generate(cfg) }

// NewServerFromStore returns a Server answering queries from st, which
// must already hold a current version. Use it to preload history (e.g.
// the monthly study-window snapshots) before taking traffic.
func NewServerFromStore(st *ServerStore) *Server { return serve.NewFromStore(st) }

// ServerReplicationMetrics is the replication block a follower Server
// advertises in /v1/metrics: the upstream /v1/list URL it tracks, the
// last-synced version hash, swap-propagation lag, and the
// consecutive-304 idle streak. Server.Replication returns it (nil on
// non-followers); wire Server.RecordReplicationPoll to
// SourceWatcher.OnPoll and call Server.RecordReplicationSwap on each
// delivered swap to keep it current. See the README's "Replication &
// edge tiering" section for the full follower topology.
type ServerReplicationMetrics = serve.ReplicationMetrics

// ListSource produces list revisions with change detection: Fetch returns
// ErrListNotModified when the list is unchanged since the previous
// successful Fetch. File and HTTP implementations ship today; see
// OpenSource.
type ListSource = source.Source

// SourceMeta records the provenance of a fetched list revision (content
// hash plus file stat or HTTP validators).
type SourceMeta = source.Meta

// SourceSwap is one list change delivered by a SourceWatcher: the new
// list, its provenance, and a diff against the previous revision.
type SourceSwap = source.Swap

// SourceWatcher polls a ListSource on a ticker and delivers SourceSwaps;
// Refresh forces an unconditional re-read (the SIGHUP path).
type SourceWatcher = source.Watcher

// ErrListNotModified is returned by ListSource.Fetch when the source's
// content has not changed. It is the common case on a poll tick, not a
// failure.
var ErrListNotModified = source.ErrNotModified

// OpenSource returns the ListSource for a list specifier: an http:// or
// https:// URL polls upstream with conditional GETs (ETag /
// If-Modified-Since), anything else reads a local file gated on
// mtime/size. Both also gate on the list content hash.
func OpenSource(spec string) ListSource { return source.Open(spec) }

// NewSourceWatcher returns a SourceWatcher polling src every interval
// (0: only Refresh triggers fetches), diffing the first swap against
// initial. logf, if non-nil, receives fetch-failure log lines.
func NewSourceWatcher(src ListSource, interval time.Duration, initial *List, logf func(format string, args ...any)) *SourceWatcher {
	return source.NewWatcher(src, interval, initial, logf)
}

// Artifact is one regenerated table or figure.
type Artifact = analysis.Artifact

// Experiment is one runnable table/figure reproduction.
type Experiment = analysis.Experiment

// Experiments returns every reproduction experiment in paper order.
func Experiments() []Experiment { return analysis.All() }

// RunExperiments regenerates every table and figure with the given seed.
func RunExperiments(ctx context.Context, seed int64) ([]*Artifact, error) {
	return analysis.RunAll(ctx, analysis.NewSession(analysis.Config{Seed: seed}))
}

// RunExperiment runs a single experiment by ID ("table1" ... "figure9").
func RunExperiment(ctx context.Context, seed int64, id string) (*Artifact, error) {
	s := analysis.NewSession(analysis.Config{Seed: seed})
	valid := make([]string, 0, len(analysis.All()))
	for _, e := range analysis.All() {
		if e.ID == id {
			return e.Run(ctx, s)
		}
		valid = append(valid, e.ID)
	}
	sort.Strings(valid)
	return nil, &UnknownExperimentError{ID: id, Valid: valid}
}

// UnknownExperimentError reports a RunExperiment call with an ID that does
// not match any experiment.
type UnknownExperimentError struct {
	ID string
	// Valid lists every known experiment ID, sorted, so the message is
	// self-diagnosing (`rws-analyze -only figure10` tells the caller what
	// it could have asked for).
	Valid []string
}

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	if len(e.Valid) == 0 {
		return "rwskit: unknown experiment " + e.ID
	}
	return "rwskit: unknown experiment " + e.ID + " (valid: " + strings.Join(e.Valid, ", ") + ")"
}
