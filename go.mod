module rwskit

go 1.22
